"""Is binary rank multiplicative under tensor products?  (Section VI.)

The paper leaves open whether ``r_B(A (x) B) = r_B(A) * r_B(B)`` and
suggests the SMT tool as an instrument to investigate.  This experiment
does exactly that:

* for a pool of factor pairs it computes both factor ranks exactly,
  brackets the product rank with Eq. 3 / Eq. 5, and — whenever the
  bracket leaves room — asks the oracle whether the product can be
  partitioned with *fewer* than ``r_B(A) * r_B(B)`` rectangles;
* it includes Eq. 2's matrix ``C`` (fooling number 2 < r_B = 3).  Here
  the experiment itself teaches the first lesson: ``C`` has *full real
  rank*, and real rank is multiplicative over R, so Eq. 3 already pins
  ``r_B(C (x) C) = 9`` — Eq. 5's fooling bound (6) is the weaker handle.
  Genuinely open brackets need "double-slack" factors — binary rank
  exceeding *both* the real rank and the fooling number — which the
  runner finds by rejection sampling and pairs with ``C``.

A SAT answer at ``product - 1`` would be a *strict submultiplicativity
witness* (a publishable observation); UNSAT proves multiplicativity for
that pair.  Budgets keep the search laptop-sized: undecided cases are
reported as such, never silently dropped.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.benchgen.random_matrices import random_nonempty_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import rank_lower_bound
from repro.core.fooling import fooling_number
from repro.core.paper_matrices import equation_2
from repro.core.reductions import reduce_matrix
from repro.experiments.common import write_json
from repro.sat.solver import SolveStatus
from repro.smt.oracle import RankDecisionOracle
from repro.solvers.sap import SapOptions, sap_solve
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table

VERDICTS = ("multiplicative", "submultiplicative", "undecided")


@dataclass
class TensorProbe:
    """One factor pair and what we learned about ``r_B(A (x) B)``."""

    label: str
    rank_a: int
    rank_b: int
    product_bound: int  # r_B(A) * r_B(B), the tensor-partition upper bound
    lower_bound: int  # max(Eq. 3 on the product, Eq. 5)
    verdict: str
    probe_status: Optional[str] = None  # oracle answer at product-1
    probe_seconds: float = 0.0

    @property
    def bracket(self) -> str:
        return f"[{self.lower_bound}, {self.product_bound}]"


@dataclass
class TensorRankResult:
    """Aggregated multiplicativity evidence."""

    probes: List[TensorProbe] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        tally = {verdict: 0 for verdict in VERDICTS}
        for probe in self.probes:
            tally[probe.verdict] += 1
        return tally

    def witnesses(self) -> List[TensorProbe]:
        return [
            p for p in self.probes if p.verdict == "submultiplicative"
        ]

    def render(self) -> str:
        headers = [
            "pair", "r_B(A)", "r_B(B)", "bracket", "probe", "verdict",
        ]
        rows = [
            [
                probe.label,
                str(probe.rank_a),
                str(probe.rank_b),
                probe.bracket,
                probe.probe_status or "-",
                probe.verdict,
            ]
            for probe in self.probes
        ]
        counts = self.counts()
        title = (
            "Binary rank under tensor products — "
            + ", ".join(f"{v}: {counts[v]}" for v in VERDICTS)
        )
        return format_table(headers, rows, title=title)

    def as_json(self) -> Dict[str, object]:
        return {
            "counts": self.counts(),
            "probes": [
                {
                    "label": p.label,
                    "rank_a": p.rank_a,
                    "rank_b": p.rank_b,
                    "product_bound": p.product_bound,
                    "lower_bound": p.lower_bound,
                    "verdict": p.verdict,
                    "probe_status": p.probe_status,
                    "probe_seconds": round(p.probe_seconds, 4),
                }
                for p in self.probes
            ],
        }


def _exact_rank(matrix: BinaryMatrix, seed: int, budget: float) -> Optional[int]:
    result = sap_solve(
        matrix,
        options=SapOptions(trials=32, seed=seed, time_budget=budget),
    )
    return result.depth if result.proved_optimal else None


def probe_pair(
    a: BinaryMatrix,
    b: BinaryMatrix,
    *,
    label: str,
    seed: int = 0,
    factor_budget: float = 10.0,
    probe_budget: float = 20.0,
) -> Optional[TensorProbe]:
    """Bracket ``r_B(A (x) B)`` and, if the bracket is open, probe below
    the product bound.  Returns ``None`` when a factor rank cannot be
    certified within budget (nothing to conclude from such a pair).
    """
    rank_a = _exact_rank(a, seed, factor_budget)
    rank_b = _exact_rank(b, seed + 1, factor_budget)
    if rank_a is None or rank_b is None:
        return None
    product = a.tensor(b)
    product_bound = rank_a * rank_b
    eq5 = max(
        rank_a * fooling_number(b, seed=seed),
        rank_b * fooling_number(a, seed=seed),
    )
    lower = max(rank_lower_bound(product), eq5)

    if lower >= product_bound:
        return TensorProbe(
            label=label,
            rank_a=rank_a,
            rank_b=rank_b,
            product_bound=product_bound,
            lower_bound=lower,
            verdict="multiplicative",
        )

    # Open bracket: ask whether product - 1 rectangles suffice.
    import time

    reduced = reduce_matrix(product)
    oracle = RankDecisionOracle(reduced.matrix)
    started = time.perf_counter()
    status, _ = oracle.check_at_most(
        product_bound - 1, time_budget=probe_budget
    )
    elapsed = time.perf_counter() - started
    if status is SolveStatus.SAT:
        verdict = "submultiplicative"
    elif status is SolveStatus.UNSAT:
        verdict = "multiplicative"
    else:
        verdict = "undecided"
    return TensorProbe(
        label=label,
        rank_a=rank_a,
        rank_b=rank_b,
        product_bound=product_bound,
        lower_bound=lower,
        verdict=verdict,
        probe_status=status.value,
        probe_seconds=elapsed,
    )


@dataclass
class TensorRankConfig:
    pairs: int = 12
    open_pairs: int = 2  # pairs built from double-slack factors
    shape: int = 3  # factor matrices are shape x shape
    open_shape: int = 5  # double-slack factors are open_shape x open_shape
    occupancy: float = 0.55
    seed: int = 2024
    factor_budget: float = 10.0
    probe_budget: float = 20.0
    include_equation2: bool = True
    include_known_open: bool = True


def run_tensor_rank(
    config: Optional[TensorRankConfig] = None,
) -> TensorRankResult:
    if config is None:
        config = TensorRankConfig()
    result = TensorRankResult()

    if config.include_equation2:
        c = equation_2()
        probe = probe_pair(
            c,
            c,
            label="eq2 (x) eq2",
            seed=config.seed,
            factor_budget=config.factor_budget,
            probe_budget=config.probe_budget,
        )
        if probe is not None:
            result.probes.append(probe)

    if config.include_known_open:
        # A pinned double-slack witness (rank 4, fooling 4, r_B 5 —
        # found with this module's own rejection sampler): paired with
        # Eq. 2's matrix the bracket is [12, 15], a concrete open
        # instance of the paper's question, present in every run even
        # when the randomized sampler below comes up empty.
        known = random_nonempty_matrix(5, 5, 0.5, seed=572 * 7 + 5)
        probe = probe_pair(
            known,
            equation_2(),
            label="pinned-open (x) eq2",
            seed=config.seed,
            factor_budget=config.factor_budget,
            probe_budget=config.probe_budget,
        )
        if probe is not None:
            result.probes.append(probe)

    seeds = spawn_seeds(config.seed, config.pairs, salt="tensor-rank")
    for index, pair_seed in enumerate(seeds):
        a = random_nonempty_matrix(
            config.shape, config.shape, config.occupancy, seed=pair_seed
        )
        b = random_nonempty_matrix(
            config.shape, config.shape, config.occupancy, seed=pair_seed + 1
        )
        probe = probe_pair(
            a,
            b,
            label=f"rand-{index}",
            seed=pair_seed,
            factor_budget=config.factor_budget,
            probe_budget=config.probe_budget,
        )
        if probe is not None:
            result.probes.append(probe)

    # An open bracket needs (i) a real-rank gap on some factor — else
    # Eq. 3 closes it, rank being multiplicative over R — and (ii)
    # fooling number < r_B on *both* factors — else Eq. 5 closes it,
    # since phi(B) = r_B(B) forces r_B(A)*phi(B) = product.  Matrices
    # with slack in both bounds ("double-slack") are rare but findable
    # by rejection sampling at 5x5; pairing one with Eq. 2's matrix
    # (phi 2 < r_B 3, but full rank) yields genuinely open brackets.
    slack_seeds = spawn_seeds(
        config.seed, config.open_pairs, salt="tensor-rank-open"
    )
    eq2 = equation_2()
    for index, pair_seed in enumerate(slack_seeds):
        a = _draw_double_slack_factor(
            config.open_shape, pair_seed, config.factor_budget
        )
        if a is None:
            continue
        probe = probe_pair(
            a,
            eq2,
            label=f"open-{index} (x) eq2",
            seed=pair_seed,
            factor_budget=config.factor_budget,
            probe_budget=config.probe_budget,
        )
        if probe is not None:
            result.probes.append(probe)
    return result


def _draw_double_slack_factor(
    shape: int, seed: int, budget: float, attempts: int = 200
) -> Optional[BinaryMatrix]:
    """A random matrix with certified slack in *both* lower bounds:
    ``rank_R < r_B`` and ``phi < r_B``.  Only such factors can leave
    the product bracket open (see the comment in the runner)."""
    for attempt in range(attempts):
        candidate = random_nonempty_matrix(
            shape, shape, 0.55, seed=seed + 1000 * attempt
        )
        rank = rank_lower_bound(candidate)
        if rank >= min(candidate.shape):  # full rank: r_B = rank
            continue
        exact = _exact_rank(candidate, seed, budget)
        if exact is None or exact <= rank:
            continue
        if fooling_number(candidate, seed=seed) < exact:
            return candidate
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pairs", type=int, default=12)
    parser.add_argument("--open-pairs", type=int, default=2)
    parser.add_argument("--shape", type=int, default=3)
    parser.add_argument("--occupancy", type=float, default=0.55)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--probe-budget", type=float, default=20.0)
    parser.add_argument(
        "--no-known-open", action="store_true",
        help="skip the pinned open-bracket probe",
    )
    parser.add_argument("--json", type=str, default=None)
    args = parser.parse_args(argv)

    config = TensorRankConfig(
        pairs=args.pairs,
        open_pairs=args.open_pairs,
        shape=args.shape,
        occupancy=args.occupancy,
        seed=args.seed,
        probe_budget=args.probe_budget,
        include_known_open=not args.no_known_open,
    )
    result = run_tensor_rank(config)
    print(result.render())
    witnesses = result.witnesses()
    if witnesses:
        print(
            "\nSTRICT SUBMULTIPLICATIVITY WITNESS(ES) FOUND: "
            + ", ".join(w.label for w in witnesses)
        )
    if args.json:
        write_json(args.json, result.as_json())
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
