"""Table I: percentage of cases finding an optimal solution.

Reproduces the paper's headline table — per benchmark family, the
fraction of instances where (a) the real and binary ranks agree
("rank" column) and (b) each heuristic reaches the proven optimum:
the trivial heuristic and row packing with 1/10/100/1000 trials.

Optimality certification follows the paper:

* <=10-row families: SAP proves ``r_B`` exactly (SMT descent);
* Set 2 carries its optimum by construction;
* 100x100: SMT is out of reach, so a case counts as certified when some
  heuristic meets the Eq. 3 rank bound (which the paper observed to
  always happen at 1000 trials).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.benchgen.suite import BenchmarkCase, table1_suites
from repro.core.bounds import rank_lower_bound
from repro.experiments.common import case_seed, resolve_scale, write_json
from repro.solvers.registry import TABLE1_HEURISTICS, make_heuristic
from repro.solvers.sap import SapOptions, sap_solve
from repro.utils.tables import format_percent, format_table

QUICK_HEURISTICS = ("trivial", "packing:1", "packing:10", "packing:100")


@dataclass
class Table1Config:
    scale: str = "quick"
    seed: int = 2024
    heuristics: Sequence[str] = ()
    smt_time_budget: float = 20.0
    include_large: bool = True

    def __post_init__(self) -> None:
        if not self.heuristics:
            self.heuristics = (
                TABLE1_HEURISTICS if self.scale == "paper" else QUICK_HEURISTICS
            )


@dataclass
class CaseRecord:
    case_id: str
    family: str
    real_rank: int
    heuristic_depths: Dict[str, int]
    optimal_depth: Optional[int]
    certified_by: Optional[str]  # "sap" | "construction" | "rank-match"

    @property
    def rank_equals_binary(self) -> Optional[bool]:
        if self.optimal_depth is None:
            return None
        return self.optimal_depth == self.real_rank


@dataclass
class Table1Result:
    config: Table1Config
    records: List[CaseRecord] = field(default_factory=list)

    def families(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.family not in seen:
                seen.append(record.family)
        return seen

    def row(self, family: str) -> Dict[str, str]:
        records = [r for r in self.records if r.family == family]
        certified = [r for r in records if r.optimal_depth is not None]
        row: Dict[str, str] = {"benchmark": family}
        row["rank"] = format_percent(
            sum(1 for r in certified if r.rank_equals_binary),
            len(certified),
        )
        for name in self.config.heuristics:
            row[name] = format_percent(
                sum(
                    1
                    for r in certified
                    if r.heuristic_depths[name] == r.optimal_depth
                ),
                len(certified),
            )
        row["certified"] = f"{len(certified)}/{len(records)}"
        return row

    def render(self) -> str:
        headers = (
            ["benchmark", "rank"]
            + list(self.config.heuristics)
            + ["certified"]
        )
        rows = [
            [self.row(family)[h] for h in headers]
            for family in self.families()
        ]
        return format_table(
            headers,
            rows,
            title=(
                "Table I reproduction — % of cases finding an optimal "
                f"solution (scale={self.config.scale})"
            ),
        )

    def as_json(self) -> Dict[str, object]:
        return {
            "scale": self.config.scale,
            "seed": self.config.seed,
            "heuristics": list(self.config.heuristics),
            "rows": [self.row(family) for family in self.families()],
            "cases": [
                {
                    "case_id": r.case_id,
                    "family": r.family,
                    "real_rank": r.real_rank,
                    "optimal_depth": r.optimal_depth,
                    "certified_by": r.certified_by,
                    "heuristic_depths": r.heuristic_depths,
                }
                for r in self.records
            ],
        }


def evaluate_case(
    case: BenchmarkCase, config: Table1Config
) -> CaseRecord:
    """Run every heuristic and certify the optimum for one instance."""
    matrix = case.matrix
    real_rank = rank_lower_bound(matrix)

    heuristic_depths: Dict[str, int] = {}
    for name in config.heuristics:
        heuristic = make_heuristic(name)
        seed = case_seed(config.seed, case.case_id, salt=name)
        heuristic_depths[name] = heuristic(matrix, seed).depth

    optimal_depth: Optional[int] = None
    certified_by: Optional[str] = None
    if case.known_binary_rank is not None:
        optimal_depth = case.known_binary_rank
        certified_by = "construction"
    elif matrix.num_rows <= 10 or matrix.num_cols <= 10:
        result = sap_solve(
            matrix,
            options=SapOptions(
                trials=32,
                seed=case_seed(config.seed, case.case_id, salt="sap"),
                time_budget=config.smt_time_budget,
            ),
        )
        if result.proved_optimal:
            optimal_depth = result.depth
            certified_by = "sap"
    if optimal_depth is None:
        best = min(heuristic_depths.values())
        if best == real_rank:
            optimal_depth = best
            certified_by = "rank-match"
    return CaseRecord(
        case_id=case.case_id,
        family=case.family,
        real_rank=real_rank,
        heuristic_depths=heuristic_depths,
        optimal_depth=optimal_depth,
        certified_by=certified_by,
    )


def run_table1(config: Optional[Table1Config] = None) -> Table1Result:
    if config is None:
        config = Table1Config(scale=resolve_scale())
    suites = table1_suites(
        scale=config.scale,
        seed=config.seed,
        include_large=config.include_large,
    )
    result = Table1Result(config=config)
    for family_cases in suites.values():
        for case in family_cases:
            result.records.append(evaluate_case(case, config))
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale benchmark counts"
    )
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--no-large", action="store_true", help="skip the 100x100 family"
    )
    parser.add_argument(
        "--smt-budget", type=float, default=20.0,
        help="SAP wall-clock budget per case (seconds)",
    )
    parser.add_argument("--json", type=str, default=None, help="output path")
    parser.add_argument(
        "--svg", type=str, default=None,
        help="write row-packing saturation curves as SVG to this path",
    )
    args = parser.parse_args(argv)

    config = Table1Config(
        scale=resolve_scale("paper" if args.full else None),
        seed=args.seed,
        smt_time_budget=args.smt_budget,
        include_large=not args.no_large,
    )
    result = run_table1(config)
    print(result.render())
    if args.json:
        write_json(args.json, result.as_json())
        print(f"\nwrote {args.json}")
    if args.svg:
        from repro.viz.figures import table1_saturation_svg

        table1_saturation_svg(result).write(args.svg)
        print(f"wrote {args.svg}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
