"""Table I: percentage of cases finding an optimal solution.

Reproduces the paper's headline table — per benchmark family, the
fraction of instances where (a) the real and binary ranks agree
("rank" column) and (b) each heuristic reaches the proven optimum:
the trivial heuristic and row packing with 1/10/100/1000 trials.

Optimality certification follows the paper:

* <=10-row families: SAP proves ``r_B`` exactly (SMT descent);
* Set 2 carries its optimum by construction;
* 100x100: SMT is out of reach, so a case counts as certified when some
  heuristic meets the Eq. 3 rank bound (which the paper observed to
  always happen at 1000 trials).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.benchgen.suite import BenchmarkCase, flatten_suites, table1_suites
from repro.experiments.common import (
    resolve_scale,
    resolve_workers,
    service_members,
    write_json,
)
from repro.service.batch import BatchItem, instance_seed, solve_batch
from repro.service.budget import PortfolioBudget
from repro.service.portfolio import (
    CERTIFIED_BY_RANK,
    PortfolioResult,
    solve_portfolio,
)
from repro.solvers.registry import TABLE1_HEURISTICS
from repro.utils.tables import format_percent, format_table

QUICK_HEURISTICS = ("trivial", "packing:1", "packing:10", "packing:100")


@dataclass
class Table1Config:
    scale: str = "quick"
    seed: int = 2024
    heuristics: Sequence[str] = ()
    smt_time_budget: float = 20.0
    include_large: bool = True
    workers: Optional[int] = None  # None -> REPRO_WORKERS, else 1

    def __post_init__(self) -> None:
        if not self.heuristics:
            self.heuristics = (
                TABLE1_HEURISTICS if self.scale == "paper" else QUICK_HEURISTICS
            )


@dataclass
class CaseRecord:
    case_id: str
    family: str
    real_rank: int
    heuristic_depths: Dict[str, int]
    optimal_depth: Optional[int]
    certified_by: Optional[str]  # "sap" | "construction" | "rank-match"

    @property
    def rank_equals_binary(self) -> Optional[bool]:
        if self.optimal_depth is None:
            return None
        return self.optimal_depth == self.real_rank


@dataclass
class Table1Result:
    config: Table1Config
    records: List[CaseRecord] = field(default_factory=list)

    def families(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.family not in seen:
                seen.append(record.family)
        return seen

    def row(self, family: str) -> Dict[str, str]:
        records = [r for r in self.records if r.family == family]
        certified = [r for r in records if r.optimal_depth is not None]
        row: Dict[str, str] = {"benchmark": family}
        row["rank"] = format_percent(
            sum(1 for r in certified if r.rank_equals_binary),
            len(certified),
        )
        for name in self.config.heuristics:
            row[name] = format_percent(
                sum(
                    1
                    for r in certified
                    if r.heuristic_depths[name] == r.optimal_depth
                ),
                len(certified),
            )
        row["certified"] = f"{len(certified)}/{len(records)}"
        return row

    def render(self) -> str:
        headers = (
            ["benchmark", "rank"]
            + list(self.config.heuristics)
            + ["certified"]
        )
        rows = [
            [self.row(family)[h] for h in headers]
            for family in self.families()
        ]
        return format_table(
            headers,
            rows,
            title=(
                "Table I reproduction — % of cases finding an optimal "
                f"solution (scale={self.config.scale})"
            ),
        )

    def as_json(self) -> Dict[str, object]:
        return {
            "scale": self.config.scale,
            "seed": self.config.seed,
            "heuristics": list(self.config.heuristics),
            "rows": [self.row(family) for family in self.families()],
            "cases": [
                {
                    "case_id": r.case_id,
                    "family": r.family,
                    "real_rank": r.real_rank,
                    "optimal_depth": r.optimal_depth,
                    "certified_by": r.certified_by,
                    "heuristic_depths": r.heuristic_depths,
                }
                for r in self.records
            ],
        }


def _case_members(
    case: BenchmarkCase, config: Table1Config
) -> Tuple[str, ...]:
    """Portfolio members for one instance: heuristic columns, plus the
    SAP certifier when the instance is small enough and not already
    certified by construction (Set 2)."""
    matrix = case.matrix
    certify = case.known_binary_rank is None and (
        matrix.num_rows <= 10 or matrix.num_cols <= 10
    )
    return service_members(config.heuristics, certify=certify)


def _record_from_result(
    case: BenchmarkCase, config: Table1Config, result: PortfolioResult
) -> CaseRecord:
    """Translate portfolio provenance into the Table I record shape."""
    heuristic_depths: Dict[str, int] = {}
    for name in config.heuristics:
        depth = result.member(name).depth
        if depth is None:
            raise RuntimeError(
                f"heuristic {name!r} produced no depth for {case.case_id}: "
                f"{result.member(name).error}"
            )
        heuristic_depths[name] = depth

    optimal_depth: Optional[int] = None
    certified_by: Optional[str] = None
    if case.known_binary_rank is not None:
        optimal_depth = case.known_binary_rank
        certified_by = "construction"
    elif result.optimal:
        optimal_depth = result.depth
        certified_by = (
            "rank-match" if result.certifier == CERTIFIED_BY_RANK else "sap"
        )
    return CaseRecord(
        case_id=case.case_id,
        family=case.family,
        real_rank=result.lower_bound,
        heuristic_depths=heuristic_depths,
        optimal_depth=optimal_depth,
        certified_by=certified_by,
    )


def evaluate_case(
    case: BenchmarkCase, config: Table1Config
) -> CaseRecord:
    """Race every heuristic (plus the certifier) on one instance."""
    result = solve_portfolio(
        case.matrix,
        members=_case_members(case, config),
        seed=instance_seed(config.seed, case.case_id),
        budget=PortfolioBudget(per_member_seconds=config.smt_time_budget),
        stop_when_optimal=False,
    )
    return _record_from_result(case, config, result)


def run_table1(config: Optional[Table1Config] = None) -> Table1Result:
    """Fan the whole benchmark suite through the portfolio service."""
    if config is None:
        config = Table1Config(scale=resolve_scale())
    suites = table1_suites(
        scale=config.scale,
        seed=config.seed,
        include_large=config.include_large,
    )
    cases = flatten_suites(suites)
    records = solve_batch(
        [
            BatchItem(case.case_id, case.matrix, _case_members(case, config))
            for case in cases
        ],
        seed=config.seed,
        workers=resolve_workers(config.workers),
        budget_per_member=config.smt_time_budget,
        stop_when_optimal=False,
    )
    by_id = {record.case_id: record.result for record in records}
    result = Table1Result(config=config)
    for case in cases:
        result.records.append(
            _record_from_result(case, config, by_id[case.case_id])
        )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale benchmark counts"
    )
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--no-large", action="store_true", help="skip the 100x100 family"
    )
    parser.add_argument(
        "--smt-budget", type=float, default=20.0,
        help="SAP wall-clock budget per case (seconds)",
    )
    parser.add_argument("--json", type=str, default=None, help="output path")
    parser.add_argument(
        "--svg", type=str, default=None,
        help="write row-packing saturation curves as SVG to this path",
    )
    args = parser.parse_args(argv)

    config = Table1Config(
        scale=resolve_scale("paper" if args.full else None),
        seed=args.seed,
        smt_time_budget=args.smt_budget,
        include_large=not args.no_large,
    )
    result = run_table1(config)
    print(result.render())
    if args.json:
        write_json(args.json, result.as_json())
        print(f"\nwrote {args.json}")
    if args.svg:
        from repro.viz.figures import table1_saturation_svg

        table1_saturation_svg(result).write(args.svg)
        print(f"wrote {args.svg}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
