"""Figure 4: the most time-consuming cases.

The paper's bar/line chart ranks the hardest instances by SAP runtime,
splitting each bar into the packing-heuristic and SMT portions and
overlaying the real rank.  Observation 5: in most of the hard cases the
solver's final act is *proving UNSAT* one step below the heuristic
depth — the expensive part is the optimality proof, not finding the
solution.

This runner reproduces the data series: it solves a pool of gap and
random instances, ranks them by total time, and reports the per-phase
split, the real rank, and whether the final oracle query was UNSAT.

The pool runs through :func:`repro.service.batch.solve_batch` (one
``sap`` member per instance), so ``REPRO_WORKERS`` fans the hard cases
over a process pool; the per-phase split and the final oracle query
status ride along on the member outcome's ``detail`` record.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.benchgen.suite import gap_suite, random_suite
from repro.experiments.common import (
    resolve_scale,
    resolve_workers,
    write_json,
)
from repro.service.batch import BatchItem, solve_batch
from repro.utils.tables import format_table


@dataclass
class Figure4Config:
    scale: str = "quick"
    seed: int = 2024
    top_n: int = 8
    smt_time_budget: float = 30.0
    workers: Optional[int] = None  # None -> REPRO_WORKERS, else 1


@dataclass
class HardCase:
    case_id: str
    family: str
    total_seconds: float
    packing_seconds: float
    smt_seconds: float
    real_rank: int
    depth: int
    proved_optimal: bool
    final_query_unsat: bool


@dataclass
class Figure4Result:
    config: Figure4Config
    cases: List[HardCase] = field(default_factory=list)

    def top_cases(self) -> List[HardCase]:
        ranked = sorted(
            self.cases, key=lambda c: c.total_seconds, reverse=True
        )
        return ranked[: self.config.top_n]

    def render(self) -> str:
        headers = [
            "case",
            "family",
            "total s",
            "packing s",
            "SMT s",
            "real rank",
            "depth",
            "UNSAT proof",
        ]
        rows = [
            [
                case.case_id,
                case.family,
                f"{case.total_seconds:.3f}",
                f"{case.packing_seconds:.3f}",
                f"{case.smt_seconds:.3f}",
                case.real_rank,
                case.depth,
                "yes" if case.final_query_unsat else "no",
            ]
            for case in self.top_cases()
        ]
        table = format_table(
            headers,
            rows,
            title=(
                "Figure 4 reproduction — most time-consuming cases "
                f"(scale={self.config.scale})"
            ),
            align_right_from=2,
        )
        top = self.top_cases()
        if top:
            unsat_share = sum(
                1 for c in top if c.final_query_unsat
            ) / len(top)
            table += (
                f"\n\nObservation 5 check: {unsat_share:.0%} of the top "
                f"{len(top)} cases end by proving UNSAT"
            )
        return table

    def as_json(self) -> Dict[str, object]:
        return {
            "scale": self.config.scale,
            "seed": self.config.seed,
            "cases": [
                {
                    "case_id": c.case_id,
                    "family": c.family,
                    "total_seconds": c.total_seconds,
                    "packing_seconds": c.packing_seconds,
                    "smt_seconds": c.smt_seconds,
                    "real_rank": c.real_rank,
                    "depth": c.depth,
                    "final_query_unsat": c.final_query_unsat,
                }
                for c in sorted(
                    self.cases,
                    key=lambda c: c.total_seconds,
                    reverse=True,
                )
            ],
        }


def _case_pool(config: Figure4Config):
    """Gap families dominate the hard pool, plus random controls —
    matching the mix in the paper's figure (g2..g5 and 'r' labels)."""
    count_gap = 12 if config.scale == "paper" else 5
    count_rand = 6 if config.scale == "paper" else 3
    pool = []
    for pairs in (2, 3, 4, 5):
        pool.extend(
            gap_suite((10, 10), pairs, count_gap, seed=config.seed)
        )
    pool.extend(
        random_suite(
            (10, 10), (0.3, 0.5, 0.7), count_rand, seed=config.seed + 1
        )
    )
    return pool


def run_figure4(config: Optional[Figure4Config] = None) -> Figure4Result:
    if config is None:
        config = Figure4Config(scale=resolve_scale())
    trials = 100 if config.scale == "paper" else 20
    member = f"sap:{trials}"
    cases = _case_pool(config)
    records = solve_batch(
        [
            BatchItem(case.case_id, case.matrix, (member,))
            for case in cases
        ],
        seed=config.seed,
        workers=resolve_workers(config.workers),
        budget_per_member=config.smt_time_budget,
        stop_when_optimal=False,
    )
    by_id = {record.case_id: record for record in records}
    result = Figure4Result(config=config)
    for case in cases:
        record = by_id[case.case_id]
        outcome = record.result.member(member)
        if outcome.depth is None:
            raise RuntimeError(
                f"sap produced no result for {case.case_id}: {outcome.error}"
            )
        detail = outcome.detail or {}
        phases = detail.get("phase_seconds", {})
        result.cases.append(
            HardCase(
                case_id=case.case_id,
                family=case.family,
                total_seconds=sum(phases.values()),
                packing_seconds=phases.get("packing", 0.0),
                smt_seconds=phases.get("smt", 0.0),
                real_rank=record.result.lower_bound,
                depth=outcome.depth,
                proved_optimal=outcome.proved_optimal,
                final_query_unsat=bool(detail.get("final_query_unsat")),
            )
        )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--top", type=int, default=8)
    parser.add_argument("--json", type=str, default=None)
    parser.add_argument(
        "--svg", type=str, default=None,
        help="write the Figure 4 chart as SVG to this path",
    )
    args = parser.parse_args(argv)

    config = Figure4Config(
        scale=resolve_scale("paper" if args.full else None),
        seed=args.seed,
        top_n=args.top,
    )
    result = run_figure4(config)
    print(result.render())
    if args.json:
        write_json(args.json, result.as_json())
        print(f"\nwrote {args.json}")
    if args.svg:
        from repro.viz.figures import figure4_svg

        figure4_svg(result).write(args.svg)
        print(f"wrote {args.svg}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
