"""Experiment runners regenerating every table and figure of the paper."""

from repro.experiments.ablation import (
    AblationConfig,
    AblationResult,
    run_ablation,
)
from repro.experiments.common import resolve_scale
from repro.experiments.figure4 import Figure4Config, Figure4Result, run_figure4
from repro.experiments.ftqc_experiment import FtqcConfig, FtqcResult, run_ftqc
from repro.experiments.qldpc_experiment import (
    QldpcConfig,
    QldpcResult,
    run_qldpc,
)
from repro.experiments.table1 import (
    Table1Config,
    Table1Result,
    evaluate_case,
    run_table1,
)

__all__ = [
    "AblationConfig",
    "AblationResult",
    "Figure4Config",
    "Figure4Result",
    "FtqcConfig",
    "FtqcResult",
    "QldpcConfig",
    "QldpcResult",
    "Table1Config",
    "Table1Result",
    "evaluate_case",
    "resolve_scale",
    "run_ablation",
    "run_figure4",
    "run_ftqc",
    "run_qldpc",
    "run_table1",
]
