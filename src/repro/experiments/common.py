"""Shared experiment plumbing: scale resolution, seeds, JSON output.

Experiment runners go through the portfolio service rather than calling
individual solvers: :func:`service_members` builds the member list for
one instance (heuristic columns plus an exact certifier when the
instance is small enough to certify), and :func:`resolve_workers` reads
the batch fan-out width from ``REPRO_WORKERS``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.utils.rng import spawn_seeds

ENV_FULL = "REPRO_FULL"
ENV_WORKERS = "REPRO_WORKERS"

CERTIFIER_MEMBER = "sap"
"""The exact backend experiment runners race alongside the heuristics."""


def resolve_scale(explicit: Optional[str] = None) -> str:
    """``paper`` when requested explicitly or via ``REPRO_FULL=1``."""
    if explicit in ("quick", "paper"):
        return explicit
    if os.environ.get(ENV_FULL, "").strip() in ("1", "true", "yes"):
        return "paper"
    return "quick"


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Batch pool width: explicit argument, else ``REPRO_WORKERS``, else 1."""
    if explicit is not None:
        return max(1, explicit)
    text = os.environ.get(ENV_WORKERS, "").strip()
    if text.isdigit() and int(text) > 0:
        return int(text)
    return 1


def service_members(
    heuristics: Sequence[str], *, certify: bool = True
) -> Tuple[str, ...]:
    """Portfolio member list for one experiment instance.

    Heuristic columns run first (their depths feed the per-column
    tables); with ``certify`` the exact SAP backend closes the race and
    proves the optimum.
    """
    members = tuple(heuristics)
    if certify and CERTIFIER_MEMBER not in members:
        members = members + (CERTIFIER_MEMBER,)
    return members


def case_seed(root_seed: int, case_id: str, salt: str = "") -> int:
    """Deterministic per-case seed independent of execution order."""
    return spawn_seeds(root_seed, 1, salt=f"{salt}/{case_id}")[0]


def write_json(path: str, payload: object) -> None:
    """Write a JSON result file, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
