"""Shared experiment plumbing: scale resolution, seeds, JSON output."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.utils.rng import spawn_seeds

ENV_FULL = "REPRO_FULL"


def resolve_scale(explicit: Optional[str] = None) -> str:
    """``paper`` when requested explicitly or via ``REPRO_FULL=1``."""
    if explicit in ("quick", "paper"):
        return explicit
    if os.environ.get(ENV_FULL, "").strip() in ("1", "true", "yes"):
        return "paper"
    return "quick"


def case_seed(root_seed: int, case_id: str, salt: str = "") -> int:
    """Deterministic per-case seed independent of execution order."""
    return spawn_seeds(root_seed, 1, salt=f"{salt}/{case_id}")[0]


def write_json(path: str, payload: object) -> None:
    """Write a JSON result file, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
