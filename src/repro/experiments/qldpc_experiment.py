"""Section V (qLDPC) conjecture: row addressing usually suffices.

Two data series:

1. the full-rank probability of random matrices at equal occupancy but
   increasing width (10x10 vs 10x20 vs 10x30) — the paper's stated
   evidence that wide block patterns are "much easier to be full rank";
2. direct tests on random 1D block layouts: how often the row-by-row
   schedule (one shot per distinct block pattern) is already
   depth-optimal.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import (
    case_seed,
    resolve_scale,
    resolve_workers,
    write_json,
)
from repro.ftqc.qldpc import (
    BlockLayout,
    full_rank_fraction,
    row_addressing_depth,
)
from repro.service.batch import BatchItem, solve_batch
from repro.utils.tables import format_table

SUFFICIENCY_MEMBER = "sap:32"
"""The exact member that decides row-addressing optimality per layout."""


@dataclass
class QldpcConfig:
    scale: str = "quick"
    seed: int = 2024
    occupancies: tuple = (0.2, 0.3, 0.5, 0.7)
    rank_samples: int = 40
    layout_samples: int = 10
    num_blocks: int = 8
    block_size: int = 12
    qubits_per_block: int = 4
    smt_time_budget: float = 10.0
    workers: Optional[int] = None  # None -> REPRO_WORKERS, else 1


@dataclass
class QldpcResult:
    config: QldpcConfig
    full_rank_rows: List[Dict[str, object]] = field(default_factory=list)
    sufficiency: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["occupancy", "10x10", "10x20", "10x30"]
        rows = [
            [
                row["occupancy"],
                f"{row['10x10']:.0%}",
                f"{row['10x20']:.0%}",
                f"{row['10x30']:.0%}",
            ]
            for row in self.full_rank_rows
        ]
        table = format_table(
            headers,
            rows,
            title=(
                "Section V evidence — full real-rank probability vs width "
                f"(scale={self.config.scale})"
            ),
        )
        s = self.sufficiency
        table += (
            f"\n\nRow-addressing sufficiency on random "
            f"{self.config.num_blocks}x{self.config.block_size} block "
            f"layouts ({self.config.qubits_per_block} qubits/block): "
            f"{s['sufficient']}/{s['decided']} decided cases optimal "
            f"({s['undecided']} undecided)"
        )
        return table

    def as_json(self) -> Dict[str, object]:
        return {
            "scale": self.config.scale,
            "full_rank_rows": self.full_rank_rows,
            "sufficiency": self.sufficiency,
        }


def run_qldpc(config: Optional[QldpcConfig] = None) -> QldpcResult:
    if config is None:
        config = QldpcConfig(scale=resolve_scale())
    if config.scale == "paper":
        config.rank_samples = max(config.rank_samples, 200)
        config.layout_samples = max(config.layout_samples, 50)

    result = QldpcResult(config=config)
    for occupancy in config.occupancies:
        row: Dict[str, object] = {"occupancy": occupancy}
        for num_cols in (10, 20, 30):
            row[f"10x{num_cols}"] = full_rank_fraction(
                10,
                num_cols,
                occupancy,
                config.rank_samples,
                seed=case_seed(
                    config.seed, f"rank-10x{num_cols}-{occupancy}", "qldpc"
                ),
            )
        result.full_rank_rows.append(row)

    # The sufficiency sweep is the expensive half (one exact solve per
    # random layout): fan it over the batch service.  A layout counts
    # as decided when the portfolio certifies the optimum — by SAP's
    # proof or by the Eq. 3 rank bound.
    layout = BlockLayout(config.num_blocks, config.block_size)
    patterns = {
        f"layout-{sample}": layout.random_pattern(
            config.qubits_per_block,
            seed=case_seed(config.seed, f"layout-{sample}", "qldpc"),
        )
        for sample in range(config.layout_samples)
    }
    records = solve_batch(
        [
            BatchItem(case_id, pattern, (SUFFICIENCY_MEMBER,))
            for case_id, pattern in patterns.items()
        ],
        seed=config.seed,
        workers=resolve_workers(config.workers),
        budget_per_member=config.smt_time_budget,
    )
    sufficient = 0
    decided = 0
    undecided = 0
    for record in records:
        if not record.result.optimal:
            undecided += 1
            continue
        decided += 1
        row_depth = row_addressing_depth(patterns[record.case_id])
        if record.result.depth == row_depth:
            sufficient += 1
    result.sufficiency = {
        "sufficient": sufficient,
        "decided": decided,
        "undecided": undecided,
        "row_depth_example": row_addressing_depth(
            layout.random_pattern(
                config.qubits_per_block,
                seed=case_seed(config.seed, "layout-example", "qldpc"),
            )
        ),
    }
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--json", type=str, default=None)
    args = parser.parse_args(argv)

    config = QldpcConfig(
        scale=resolve_scale("paper" if args.full else None),
        seed=args.seed,
    )
    result = run_qldpc(config)
    print(result.render())
    if args.json:
        write_json(args.json, result.as_json())
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
