"""Ablation studies A1–A4, A8, A10, A11 as one printable report.

Aggregates the design-choice comparisons that the benchmark files
measure individually:

* A1 — row-packing variants (basis update, ordering, Algorithm X,
  greedy-rectangle baseline) on the gap family;
* A2 — encoder/symmetry choices on the Figure 1b UNSAT proof;
* A3 — covered inside A1 (``packing_x``);
* A4 — don't-care exploitation vs plain solving on masked instances;
* A8 — SAP descent strategies (linear / binary / assumption) from a
  weakened heuristic start;
* A10 — lower-bound tightness (rank vs fooling vs LP) on the gap family;
* A11 — depth inflation under AOD tone caps.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.benchgen.suite import gap_suite
from repro.completion.exact import masked_minimum_addressing
from repro.completion.masked import MaskedMatrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.paper_matrices import figure_1b
from repro.experiments.common import case_seed, resolve_scale, write_json
from repro.sat.solver import SolveStatus
from repro.smt.encoder import make_encoder
from repro.solvers.registry import make_heuristic
from repro.solvers.sap import SapOptions, sap_solve
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table

PACKING_VARIANTS = (
    "trivial",
    "packing:10",
    "packing_noupdate:10",
    "packing_sorted:10",
    "packing_x:10",
    "greedy:10",
)

ENCODER_CONFIGS = (
    ("direct", "precedence"),
    ("direct", "restricted"),
    ("direct", "none"),
    ("binary", "none"),
)


@dataclass
class AblationConfig:
    scale: str = "quick"
    seed: int = 2024
    gap_pairs: int = 3
    gap_cases: int = 12
    masked_cases: int = 6


@dataclass
class AblationResult:
    config: AblationConfig
    packing_rows: List[Dict[str, object]] = field(default_factory=list)
    encoder_rows: List[Dict[str, object]] = field(default_factory=list)
    masked_rows: List[Dict[str, object]] = field(default_factory=list)
    descent_rows: List[Dict[str, object]] = field(default_factory=list)
    bounds_rows: List[Dict[str, object]] = field(default_factory=list)
    legalize_rows: List[Dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        sections = []
        sections.append(
            format_table(
                ["variant", "mean depth", "mean seconds"],
                [
                    [r["variant"], f"{r['mean_depth']:.2f}", f"{r['seconds']:.3f}"]
                    for r in self.packing_rows
                ],
                title=(
                    f"A1/A3 — packing variants on 10x10 gap-"
                    f"{self.config.gap_pairs} ({self.config.gap_cases} cases)"
                ),
            )
        )
        sections.append(
            format_table(
                ["encoding", "symmetry", "UNSAT proof s"],
                [
                    [r["encoding"], r["symmetry"], f"{r['seconds']:.3f}"]
                    for r in self.encoder_rows
                ],
                title="A2 — Figure 1b bound-4 UNSAT proof by encoder",
            )
        )
        sections.append(
            format_table(
                ["case", "plain depth", "masked depth", "saved"],
                [
                    [
                        r["case"],
                        r["plain_depth"],
                        r["masked_depth"],
                        r["saved"],
                    ]
                    for r in self.masked_rows
                ],
                title="A4 — don't-care vacancies vs plain solving",
            )
        )
        sections.append(
            format_table(
                ["descent", "oracle queries", "total depth", "seconds"],
                [
                    [
                        r["descent"],
                        str(r["queries"]),
                        str(r["total_depth"]),
                        f"{r['seconds']:.3f}",
                    ]
                    for r in self.descent_rows
                ],
                title=(
                    "A8 — SAP descent strategies (weak heuristic start, "
                    "gap family)"
                ),
            )
        )
        sections.append(
            format_table(
                ["bound", "tight", "mean gap", "seconds"],
                [
                    [
                        r["bound"],
                        f"{r['tight']}/{r['cases']}",
                        f"{r['mean_gap']:.2f}",
                        f"{r['seconds']:.3f}",
                    ]
                    for r in self.bounds_rows
                ],
                title="A10 — lower-bound tightness vs exact r_B (gap family)",
            )
        )
        sections.append(
            format_table(
                ["tone cap/axis", "ideal depth", "legal depth", "inflation"],
                [
                    [
                        str(r["cap"]),
                        str(r["ideal"]),
                        str(r["legal"]),
                        f"{r['inflation']:.2f}x",
                    ]
                    for r in self.legalize_rows
                ],
                title="A11 — depth inflation under AOD tone caps",
            )
        )
        return "\n\n".join(sections)

    def as_json(self) -> Dict[str, object]:
        return {
            "packing": self.packing_rows,
            "encoders": self.encoder_rows,
            "masked": self.masked_rows,
            "descent": self.descent_rows,
            "bounds": self.bounds_rows,
            "legalize": self.legalize_rows,
        }


def run_ablation(config: Optional[AblationConfig] = None) -> AblationResult:
    if config is None:
        config = AblationConfig(scale=resolve_scale())
    if config.scale == "paper":
        config.gap_cases = max(config.gap_cases, 50)
        config.masked_cases = max(config.masked_cases, 20)

    result = AblationResult(config=config)

    # --- A1/A3: packing variants ---------------------------------------
    cases = gap_suite(
        (10, 10), config.gap_pairs, config.gap_cases, seed=config.seed
    )
    for variant in PACKING_VARIANTS:
        heuristic = make_heuristic(variant)
        started = time.perf_counter()
        total_depth = 0
        for case in cases:
            seed = case_seed(config.seed, case.case_id, variant)
            total_depth += heuristic(case.matrix, seed).depth
        result.packing_rows.append(
            {
                "variant": variant,
                "mean_depth": total_depth / len(cases),
                "seconds": time.perf_counter() - started,
            }
        )

    # --- A2: encoder configurations ------------------------------------
    matrix = figure_1b()
    for encoding, symmetry in ENCODER_CONFIGS:
        started = time.perf_counter()
        encoder = make_encoder(
            matrix, 4, encoding=encoding, symmetry=symmetry
        )
        status = encoder.solve()
        elapsed = time.perf_counter() - started
        assert status is SolveStatus.UNSAT
        result.encoder_rows.append(
            {
                "encoding": encoding,
                "symmetry": symmetry,
                "seconds": elapsed,
            }
        )

    # --- A4: don't cares -------------------------------------------------
    rng = ensure_rng(config.seed)
    for index in range(config.masked_cases):
        ones_masks, dc_masks = [], []
        for _ in range(6):
            ones = rng.getrandbits(6)
            dc = rng.getrandbits(6) & ~ones
            ones_masks.append(ones)
            dc_masks.append(dc)
        masked = MaskedMatrix(
            BinaryMatrix(ones_masks, 6), BinaryMatrix(dc_masks, 6)
        )
        plain = sap_solve(
            masked.ones_matrix,
            options=SapOptions(trials=16, seed=index, time_budget=20),
        )
        with_dc = masked_minimum_addressing(
            masked, trials=16, seed=index, time_budget=20
        )
        result.masked_rows.append(
            {
                "case": f"masked-{index}",
                "plain_depth": plain.depth,
                "masked_depth": with_dc.depth,
                "saved": plain.depth - with_dc.depth,
            }
        )

    # --- A8: SAP descent strategies --------------------------------------
    from repro.solvers.row_packing import PackingOptions

    weak_packing = PackingOptions(
        trials=1, seed=9, basis_update=False, use_transpose=False
    )
    descent_cases = gap_suite(
        (10, 10), 5, max(6, config.gap_cases // 2), seed=config.seed + 7
    )
    for descent in ("linear", "binary", "assumption"):
        started = time.perf_counter()
        queries = 0
        total_depth = 0
        for case in descent_cases:
            sap = sap_solve(
                case.matrix,
                options=SapOptions(
                    seed=1,
                    descent=descent,
                    time_budget=60.0,
                    packing=weak_packing,
                ),
            )
            queries += len(sap.queries)
            total_depth += sap.depth
        result.descent_rows.append(
            {
                "descent": descent,
                "queries": queries,
                "total_depth": total_depth,
                "seconds": time.perf_counter() - started,
            }
        )

    # --- A10: lower-bound tightness ---------------------------------------
    from repro.core.bounds import fooling_lower_bound, rank_lower_bound
    from repro.cover.lp import lp_lower_bound

    bound_fns = (
        ("rank (Eq. 3)", rank_lower_bound),
        ("fooling", lambda m: fooling_lower_bound(m, seed=0)),
        ("LP cover", lp_lower_bound),
    )
    bound_cases = []
    for case in cases[: config.gap_cases]:
        sap = sap_solve(
            case.matrix,
            options=SapOptions(trials=16, seed=0, time_budget=30.0),
        )
        if sap.proved_optimal:
            bound_cases.append((case.matrix, sap.depth))
    for name, fn in bound_fns:
        started = time.perf_counter()
        tight = 0
        gap_total = 0
        for matrix, truth in bound_cases:
            value = fn(matrix)
            tight += value == truth
            gap_total += truth - value
        result.bounds_rows.append(
            {
                "bound": name,
                "tight": tight,
                "cases": len(bound_cases),
                "mean_gap": gap_total / max(1, len(bound_cases)),
                "seconds": time.perf_counter() - started,
            }
        )

    # --- A11: AOD tone-cap inflation ---------------------------------------
    from repro.atoms.constraints import AodConstraints
    from repro.atoms.legalize import legalize_schedule
    from repro.atoms.schedule import AddressingSchedule
    from repro.benchgen.random_matrices import random_nonempty_matrix
    from repro.solvers.row_packing import row_packing
    from repro.utils.rng import spawn_seeds

    schedules = []
    for seed in spawn_seeds(config.seed, config.masked_cases, salt="a11"):
        pattern = random_nonempty_matrix(12, 12, 0.35, seed=seed)
        schedules.append(
            AddressingSchedule.from_partition(
                row_packing(pattern, trials=5, seed=seed), theta=0.5
            )
        )
    ideal = sum(s.depth for s in schedules)
    for cap in (1, 2, 4, 8):
        constraints = AodConstraints(max_row_tones=cap, max_col_tones=cap)
        legal = sum(
            legalize_schedule(s, constraints).depth for s in schedules
        )
        result.legalize_rows.append(
            {
                "cap": cap,
                "ideal": ideal,
                "legal": legal,
                "inflation": legal / max(1, ideal),
            }
        )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--json", type=str, default=None)
    args = parser.parse_args(argv)
    config = AblationConfig(
        scale=resolve_scale("paper" if args.full else None), seed=args.seed
    )
    result = run_ablation(config)
    print(result.render())
    if args.json:
        write_json(args.json, result.as_json())
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
