"""Figure 5a / Eq. 5: two-level tensor-product addressing for FTQC.

For surface-code grids with several per-patch physical masks, compares

* the two-level solution (solve logical and physical levels separately,
  tensor the partitions) against
* the direct flat solve (SAP on the expanded physical pattern), and
* the Eq. 5 bracket.

The paper's claim to verify: the two-level product is always an upper
bound; it is provably optimal when the patch mask is all-ones
(transversal gates, ``phi = r_B = 1``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.benchgen.random_matrices import random_nonempty_matrix
from repro.experiments.common import (
    case_seed,
    resolve_scale,
    resolve_workers,
    write_json,
)
from repro.ftqc.surface_code import (
    SurfaceCodeGrid,
    boundary_row_patch_mask,
    corner_patch_mask,
    transversal_patch_mask,
)
from repro.ftqc.two_level import two_level_solve
from repro.service.batch import BatchItem, solve_batch
from repro.utils.tables import format_table

DIRECT_MEMBER = "sap:20"
"""The flat direct solve raced against the two-level construction."""


@dataclass
class FtqcConfig:
    scale: str = "quick"
    seed: int = 2024
    distance: int = 3
    patch_rows: int = 3
    patch_cols: int = 3
    samples: int = 4
    smt_time_budget: float = 15.0
    workers: Optional[int] = None  # None -> REPRO_WORKERS, else 1


@dataclass
class FtqcCase:
    case_id: str
    patch_kind: str
    two_level_depth: int
    direct_depth: Optional[int]
    direct_optimal: bool
    eq5_lower: Optional[int]
    eq5_upper: Optional[int]
    two_level_proved_optimal: bool


@dataclass
class FtqcResult:
    config: FtqcConfig
    cases: List[FtqcCase] = field(default_factory=list)

    def render(self) -> str:
        headers = [
            "case",
            "patch",
            "two-level depth",
            "direct depth",
            "Eq.5 lower",
            "Eq.5 upper",
            "two-level optimal",
        ]
        rows = [
            [
                case.case_id,
                case.patch_kind,
                case.two_level_depth,
                case.direct_depth if case.direct_depth is not None else "-",
                case.eq5_lower if case.eq5_lower is not None else "-",
                case.eq5_upper if case.eq5_upper is not None else "-",
                "yes" if case.two_level_proved_optimal else "unproven",
            ]
            for case in self.cases
        ]
        return format_table(
            headers,
            rows,
            title=(
                "Figure 5a / Eq. 5 reproduction — two-level vs direct "
                f"(scale={self.config.scale})"
            ),
            align_right_from=2,
        )

    def as_json(self) -> Dict[str, object]:
        return {
            "scale": self.config.scale,
            "cases": [
                {
                    "case_id": c.case_id,
                    "patch_kind": c.patch_kind,
                    "two_level_depth": c.two_level_depth,
                    "direct_depth": c.direct_depth,
                    "eq5_lower": c.eq5_lower,
                    "eq5_upper": c.eq5_upper,
                    "two_level_proved_optimal": c.two_level_proved_optimal,
                }
                for c in self.cases
            ],
        }


def run_ftqc(config: Optional[FtqcConfig] = None) -> FtqcResult:
    if config is None:
        config = FtqcConfig(scale=resolve_scale())
    if config.scale == "paper":
        config.samples = max(config.samples, 8)

    grid = SurfaceCodeGrid(
        config.patch_rows, config.patch_cols, config.distance
    )
    patch_masks = {
        "transversal": transversal_patch_mask(config.distance),
        "boundary-row": boundary_row_patch_mask(config.distance),
        "corner": corner_patch_mask(config.distance),
    }

    result = FtqcResult(config=config)

    # The expensive flat solves go through the batch service (so
    # REPRO_WORKERS fans them out); the cheap two-level constructions
    # stay in-process, keyed by the same per-sample seeds.
    pool: List[BatchItem] = []
    plans = []
    for sample in range(config.samples):
        logical_seed = case_seed(config.seed, f"logical-{sample}", "ftqc")
        logical_mask = random_nonempty_matrix(
            config.patch_rows, config.patch_cols, 0.5, seed=logical_seed
        )
        for patch_kind, patch_mask in patch_masks.items():
            case_id = f"ftqc-{sample}-{patch_kind}"
            physical = grid.physical_pattern(logical_mask, patch_mask)
            pool.append(BatchItem(case_id, physical, (DIRECT_MEMBER,)))
            plans.append((case_id, patch_kind, physical, logical_seed))

    records = {
        record.case_id: record
        for record in solve_batch(
            pool,
            seed=config.seed,
            workers=resolve_workers(config.workers),
            budget_per_member=config.smt_time_budget,
            stop_when_optimal=False,
        )
    }
    for case_id, patch_kind, physical, logical_seed in plans:
        two_level = two_level_solve(
            physical,
            (config.distance, config.distance),
            seed=logical_seed,
            time_budget=config.smt_time_budget,
        )
        direct = records[case_id].result.member(DIRECT_MEMBER)
        bounds = two_level.bounds
        result.cases.append(
            FtqcCase(
                case_id=case_id,
                patch_kind=patch_kind,
                two_level_depth=two_level.depth,
                direct_depth=direct.depth,
                direct_optimal=direct.proved_optimal,
                eq5_lower=bounds.lower if bounds else None,
                eq5_upper=bounds.upper if bounds else None,
                two_level_proved_optimal=two_level.proved_optimal,
            )
        )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--distance", type=int, default=3)
    parser.add_argument("--json", type=str, default=None)
    args = parser.parse_args(argv)

    config = FtqcConfig(
        scale=resolve_scale("paper" if args.full else None),
        seed=args.seed,
        distance=args.distance,
    )
    result = run_ftqc(config)
    print(result.render())
    if args.json:
        write_json(args.json, result.as_json())
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
