"""Greedy rectangle covering (upper bound for the boolean rank).

Overlap being legal makes greedy covers strictly easier than greedy
partitions: a rectangle may reuse already-covered 1s to grow larger, so
each step maximizes *newly covered* cells over maximal all-ones
rectangles seeded at an uncovered cell.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.cover.validate import validate_cover
from repro.utils.bitops import popcount
from repro.utils.rng import RngLike, ensure_rng


def _grow_cover_rectangle(
    matrix: BinaryMatrix, uncovered: List[int], seed_row: int, rng
) -> Rectangle:
    """Maximal-ish all-ones rectangle seeded at an uncovered cell of
    ``seed_row``, greedily maximizing newly covered cells."""
    cols = matrix.row_mask(seed_row)
    rows_mask = 1 << seed_row
    candidates = [
        i
        for i in range(matrix.num_rows)
        if i != seed_row and matrix.row_mask(i) & cols
    ]
    rng.shuffle(candidates)
    candidates.sort(
        key=lambda i: -popcount(matrix.row_mask(i) & cols)
    )

    def gain(row_set_mask: int, col_mask: int) -> int:
        total = 0
        mask = row_set_mask
        while mask:
            low = mask & -mask
            i = low.bit_length() - 1
            total += popcount(col_mask & uncovered[i])
            mask ^= low
        return total

    for i in candidates:
        shrunk = cols & matrix.row_mask(i)
        if shrunk == 0:
            continue
        if gain(rows_mask | (1 << i), shrunk) >= gain(rows_mask, cols):
            cols = shrunk
            rows_mask |= 1 << i
    return Rectangle(rows_mask, cols)


def greedy_cover_once(
    matrix: BinaryMatrix, *, seed: RngLike = None
) -> Partition:
    """One greedy covering pass."""
    rng = ensure_rng(seed)
    uncovered = list(matrix.row_masks)
    rects: List[Rectangle] = []
    while any(uncovered):
        seed_rows = [
            i for i in range(matrix.num_rows) if uncovered[i]
        ]
        seed_row = rng.choice(seed_rows)
        rect = _grow_cover_rectangle(matrix, uncovered, seed_row, rng)
        # The rectangle must cover at least one new cell: its seed row
        # keeps its uncovered intersection by construction.
        rects.append(rect)
        newly = 0
        for i in rect.rows:
            newly += popcount(uncovered[i] & rect.col_mask)
            uncovered[i] &= ~rect.col_mask
        if newly == 0:
            raise SolverError("greedy cover made no progress")
    cover = Partition(rects, matrix.shape)
    validate_cover(matrix, cover)
    return cover


def greedy_cover(
    matrix: BinaryMatrix,
    *,
    trials: int = 10,
    seed: RngLike = None,
    use_transpose: bool = True,
) -> Partition:
    """Best-of-``trials`` greedy cover (matrix and transpose)."""
    if trials < 1:
        raise SolverError(f"trials must be >= 1, got {trials}")
    rng = ensure_rng(seed)
    best: Optional[Partition] = None
    candidates = [(matrix, False)]
    if use_transpose:
        candidates.append((matrix.transpose(), True))
    for candidate, transposed in candidates:
        for _ in range(trials):
            cover = greedy_cover_once(candidate, seed=rng.getrandbits(62))
            if transposed:
                cover = cover.transpose()
            if best is None or cover.depth < best.depth:
                best = cover
    assert best is not None
    validate_cover(matrix, best)
    return best
