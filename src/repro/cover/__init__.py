"""Minimum rectangle cover (boolean rank) — the non-disjoint variant."""

from repro.cover.exact import (
    CoverEncoder,
    CoverResult,
    boolean_rank,
    minimum_cover,
)
from repro.cover.greedy import greedy_cover, greedy_cover_once
from repro.cover.lp import (
    FractionalCoverResult,
    fractional_cover,
    lp_lower_bound,
)
from repro.cover.maximal import is_maximal, maximal_rectangles
from repro.cover.validate import is_valid_cover, validate_cover

__all__ = [
    "CoverEncoder",
    "CoverResult",
    "FractionalCoverResult",
    "fractional_cover",
    "is_maximal",
    "lp_lower_bound",
    "maximal_rectangles",
    "boolean_rank",
    "greedy_cover",
    "greedy_cover_once",
    "is_valid_cover",
    "minimum_cover",
    "validate_cover",
]
