"""Fractional-cover LP lower bound on the rectangle cover number.

The minimum number of rectangles covering the 1s of ``M`` (the boolean
rank) is an integer program; its LP relaxation

    minimize   sum_R x_R
    subject to sum_{R containing cell} x_R >= 1   for every 1-cell,
               x_R >= 0,

taken over the *maximal* rectangles ``R`` (any cover by arbitrary
rectangles converts to one by maximal rectangles without increasing the
count), gives the fractional cover number.  Its ceiling lower-bounds
the cover number, which in turn lower-bounds the partition number
``r_B`` — so this is a third lower bound for SAP, incomparable with
Eq. 3's real rank (e.g. crown matrices: LP bound grows like
``log n`` while rank is ``n``; triangular matrices the other way).

Solved with scipy's HiGHS backend.  Paper-scale matrices (<= 10 rows)
have at most a few hundred maximal rectangles, so this is milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError
from repro.core.rectangle import Rectangle
from repro.cover.maximal import maximal_rectangles

# Guard against ceil(0.9999999...) undershoot from LP solver tolerance.
_EPSILON = 1e-6


@dataclass
class FractionalCoverResult:
    """LP optimum with the rectangle weights that achieve it."""

    value: float
    weights: List[Tuple[Rectangle, float]]
    num_rectangles: int  # columns in the LP

    @property
    def lower_bound(self) -> int:
        """Integer lower bound on the cover number (hence on r_B)."""
        return int(np.ceil(self.value - _EPSILON))


def fractional_cover(
    matrix: BinaryMatrix,
    *,
    limit: int = 100_000,
) -> Optional[FractionalCoverResult]:
    """Solve the fractional rectangle cover LP for ``matrix``.

    Returns ``None`` for the all-zero matrix (the LP is empty and the
    bound is trivially 0).
    """
    # scipy is an optional dependency (the 'dev' extra): only this LP
    # needs it, so the import is deferred to the call.
    from scipy.optimize import linprog

    cells = list(matrix.ones())
    if not cells:
        return None
    rectangles = maximal_rectangles(matrix, limit=limit)
    if not rectangles:  # pragma: no cover - nonzero matrix always has one
        raise SolverError("no maximal rectangles for a nonzero matrix")

    cell_index = {cell: t for t, cell in enumerate(cells)}
    # Constraint matrix: A[t, r] = 1 iff rectangle r covers cell t.
    coverage = np.zeros((len(cells), len(rectangles)))
    for r, rectangle in enumerate(rectangles):
        for i in rectangle.rows:
            for j in rectangle.cols:
                coverage[cell_index[(i, j)], r] = 1.0

    # linprog solves min c x s.t. A_ub x <= b_ub; flip the >= 1 rows.
    result = linprog(
        c=np.ones(len(rectangles)),
        A_ub=-coverage,
        b_ub=-np.ones(len(cells)),
        bounds=(0, None),
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible
        raise SolverError(f"fractional cover LP failed: {result.message}")
    weights = [
        (rectangles[r], float(result.x[r]))
        for r in range(len(rectangles))
        if result.x[r] > _EPSILON
    ]
    return FractionalCoverResult(
        value=float(result.fun),
        weights=weights,
        num_rectangles=len(rectangles),
    )


def lp_lower_bound(matrix: BinaryMatrix, *, limit: int = 100_000) -> int:
    """Ceiling of the fractional cover number: a lower bound on r_B."""
    result = fractional_cover(matrix, limit=limit)
    if result is None:
        return 0
    return result.lower_bound
