"""Validation for rectangle covers (non-disjoint).

A *cover* drops the disjointness requirement of a partition: rectangles
may overlap, every 1 must be covered at least once, and no rectangle may
touch a 0.  The minimum number of rectangles is the **boolean rank**
(minimum biclique *cover*), always <= the binary rank.  The paper's
addressing semantics (Rz phase accumulates) require partitions; covers
matter for idempotent effects and as the classical point of comparison
in the communication-complexity literature the paper cites.
"""

from __future__ import annotations

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidPartitionError
from repro.core.partition import Partition


def validate_cover(matrix: BinaryMatrix, cover: Partition) -> None:
    """Raise unless ``cover`` covers exactly the 1s (overlaps allowed)."""
    if cover.shape != matrix.shape:
        raise InvalidPartitionError(
            f"cover shape {cover.shape} != matrix shape {matrix.shape}"
        )
    for index, rect in enumerate(cover):
        if not rect.within(matrix):
            raise InvalidPartitionError(
                f"rectangle #{index} {rect!r} covers a 0 of the matrix"
            )
    if cover.covered_matrix() != matrix:
        missing = matrix.elementwise_and(
            cover.covered_matrix().complement()
        )
        cell = next(missing.ones())
        raise InvalidPartitionError(f"cell {cell} is not covered")


def is_valid_cover(matrix: BinaryMatrix, cover: Partition) -> bool:
    try:
        validate_cover(matrix, cover)
    except InvalidPartitionError:
        return False
    return True
