"""Exact boolean rank (minimum rectangle cover) via SAT.

The label encoding relaxes the partition encoder: each 1-cell may carry
*several* labels (at-least-one instead of exactly-one), and two cells
sharing a label need only have all-ones cross cells — no closure pull,
because overlaps are legal.  Label classes decode to their spans, which
the pair constraints keep inside the 1s.

Lower bound: fooling sets remain sound for covers (two fooling cells
cannot share any rectangle); the real-rank bound of Eq. 3 does *not*
apply (boolean rank can undercut real rank), which is itself a fact the
tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.bounds import fooling_lower_bound
from repro.core.exceptions import EncodingError, SolverError
from repro.core.partition import Partition
from repro.cover.greedy import greedy_cover
from repro.cover.validate import validate_cover
from repro.sat.solver import CdclSolver, SolveStatus
from repro.utils.rng import RngLike
from repro.utils.timing import Deadline

Cell = Tuple[int, int]


class CoverEncoder:
    """One-hot-per-label encoding of "cover number <= bound"."""

    def __init__(self, matrix: BinaryMatrix, bound: int) -> None:
        if bound < 0:
            raise EncodingError(f"bound must be >= 0, got {bound}")
        self.matrix = matrix
        self.cells: List[Cell] = list(matrix.ones())
        self.bound = bound
        self.solver = CdclSolver()
        self._trivially_unsat = False

        if not self.cells:
            return
        if bound == 0:
            self._trivially_unsat = True
            return

        num_cells = len(self.cells)
        self._vars = [
            [self.solver.new_var() for _ in range(bound)]
            for _ in range(num_cells)
        ]
        for t in range(num_cells):
            usable = self._vars[t][: min(bound, t + 1)]
            for banned in self._vars[t][len(usable) :]:
                self.solver.add_clause([-banned])
            self.solver.add_clause(usable)  # at least one label
        # Cover-style precedence: label k first occurs no earlier than
        # label k-1 (ties at the same cell allowed).
        for t in range(num_cells):
            for k in range(1, min(bound, t + 1)):
                clause = [-self._vars[t][k]]
                clause.extend(
                    self._vars[s][k - 1] for s in range(k - 1, t + 1)
                )
                self.solver.add_clause(clause)

        for a in range(num_cells):
            i, j = self.cells[a]
            for b in range(a + 1, num_cells):
                i2, j2 = self.cells[b]
                if i == i2 or j == j2:
                    continue
                if matrix[i, j2] == 0 or matrix[i2, j] == 0:
                    for k in range(bound):
                        self.solver.add_clause(
                            [-self._vars[a][k], -self._vars[b][k]]
                        )

    def narrow_to(self, bound: int) -> None:
        if bound > self.bound:
            raise EncodingError(
                f"cannot widen from {self.bound} to {bound}"
            )
        if not self.cells:
            self.bound = bound
            return
        if bound == 0:
            self._trivially_unsat = True
            self.bound = 0
            return
        for t in range(len(self.cells)):
            for k in range(bound, self.bound):
                self.solver.add_clause([-self._vars[t][k]])
        self.bound = bound

    def solve(
        self,
        *,
        conflict_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SolveStatus:
        if not self.cells:
            return SolveStatus.SAT
        if self._trivially_unsat:
            return SolveStatus.UNSAT
        return self.solver.solve(
            conflict_budget=conflict_budget, time_budget=time_budget
        )

    def extract_cover(self) -> Partition:
        if not self.cells:
            return Partition([], self.matrix.shape)
        groups: Dict[int, Tuple[int, int]] = {}
        for t, (i, j) in enumerate(self.cells):
            for k in range(self.bound):
                if self.solver.model_value(self._vars[t][k]):
                    row_mask, col_mask = groups.get(k, (0, 0))
                    groups[k] = (row_mask | (1 << i), col_mask | (1 << j))
        from repro.core.rectangle import Rectangle

        rects = [
            Rectangle(row_mask, col_mask)
            for _, (row_mask, col_mask) in sorted(groups.items())
        ]
        cover = Partition(rects, self.matrix.shape)
        validate_cover(self.matrix, cover)
        return cover


@dataclass
class CoverResult:
    cover: Partition
    proved_optimal: bool
    lower_bound: int
    heuristic_depth: int
    queries: List[Tuple[int, str, float]] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return self.cover.depth

    @property
    def boolean_rank(self) -> Optional[int]:
        return self.cover.depth if self.proved_optimal else None


def minimum_cover(
    matrix: BinaryMatrix,
    *,
    trials: int = 16,
    seed: RngLike = None,
    time_budget: Optional[float] = None,
) -> CoverResult:
    """SAP-style descent for the cover number (boolean rank)."""
    if matrix.is_zero():
        return CoverResult(
            cover=Partition([], matrix.shape),
            proved_optimal=True,
            lower_bound=0,
            heuristic_depth=0,
        )
    heuristic = greedy_cover(matrix, trials=trials, seed=seed)
    lower = fooling_lower_bound(matrix, seed=seed)
    deadline = Deadline(time_budget)
    best = heuristic
    queries: List[Tuple[int, str, float]] = []
    proved = best.depth <= lower

    encoder: Optional[CoverEncoder] = None
    bound = best.depth - 1
    while not proved and bound >= lower:
        if deadline.expired():
            break
        started = time.perf_counter()
        if encoder is None:
            encoder = CoverEncoder(matrix, bound)
        else:
            encoder.narrow_to(bound)
        status = encoder.solve(time_budget=deadline.remaining())
        queries.append((bound, status.value, time.perf_counter() - started))
        if status is SolveStatus.SAT:
            best = encoder.extract_cover()
            bound = best.depth - 1
        elif status is SolveStatus.UNSAT:
            proved = True
        else:
            break
    else:
        proved = True

    return CoverResult(
        cover=best,
        proved_optimal=proved,
        lower_bound=lower,
        heuristic_depth=heuristic.depth,
        queries=queries,
    )


def boolean_rank(
    matrix: BinaryMatrix,
    *,
    trials: int = 16,
    seed: RngLike = None,
    time_budget: Optional[float] = None,
) -> int:
    """The exact boolean rank; raises if the budget runs out."""
    result = minimum_cover(
        matrix, trials=trials, seed=seed, time_budget=time_budget
    )
    if not result.proved_optimal:
        raise SolverError(
            f"boolean rank not proven within budget; best cover "
            f"{result.depth}, lower bound {result.lower_bound}"
        )
    return result.depth
