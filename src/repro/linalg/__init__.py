"""Exact linear algebra substrates (rank over Q, GF(2) tools)."""

from repro.linalg.exact_rank import determinant, rank_over_q, real_rank
from repro.linalg.gf2 import (
    gf2_in_row_space,
    gf2_nullspace,
    gf2_rank,
    gf2_row_basis,
    gf2_row_reduce,
    gf2_solve,
)

__all__ = [
    "determinant",
    "gf2_in_row_space",
    "gf2_nullspace",
    "gf2_rank",
    "gf2_row_basis",
    "gf2_row_reduce",
    "gf2_solve",
    "rank_over_q",
    "real_rank",
]
