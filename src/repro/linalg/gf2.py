"""Linear algebra over GF(2) with bit-packed rows.

The GF(2) rank is *not* a valid lower bound for the binary rank (EBMF
addition is over R, not mod 2 — see the Section II example), but it is a
useful diagnostic: the gap construction of benchmark Set 3 exploits
exactly the difference between mod-2 and real arithmetic.  It also backs
the qLDPC substrate (parity-check matrices live over GF(2)).

All routines keep the invariant that stored pivots have pairwise distinct
lowest set bits; reduction XORs a vector against the pivot sharing its
current lowest bit until the vector dies or exposes a fresh pivot bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.binary_matrix import BinaryMatrix

MatrixLike = Union[BinaryMatrix, np.ndarray, Sequence[Sequence[int]]]


def _to_binary(matrix: MatrixLike) -> BinaryMatrix:
    if isinstance(matrix, BinaryMatrix):
        return matrix
    return BinaryMatrix.from_numpy(np.asarray(matrix) % 2)


def _reduce(mask: int, pivots: Dict[int, int]) -> int:
    """Reduce ``mask`` against ``pivots`` (low-bit -> pivot mask)."""
    while mask:
        low = mask & -mask
        pivot = pivots.get(low)
        if pivot is None:
            return mask
        mask ^= pivot
    return 0


def gf2_rank(matrix: MatrixLike) -> int:
    """Rank over GF(2) by Gaussian elimination on row masks."""
    pivots: Dict[int, int] = {}
    for mask in _to_binary(matrix).row_masks:
        residue = _reduce(mask, pivots)
        if residue:
            pivots[residue & -residue] = residue
    return len(pivots)


def gf2_row_basis(matrix: MatrixLike) -> List[int]:
    """A row-space basis (as masks) in echelon form, sorted by pivot bit."""
    pivots: Dict[int, int] = {}
    for mask in _to_binary(matrix).row_masks:
        residue = _reduce(mask, pivots)
        if residue:
            pivots[residue & -residue] = residue
    return [pivots[low] for low in sorted(pivots)]


def gf2_row_reduce(matrix: MatrixLike) -> List[int]:
    """Fully reduced row-echelon basis: no pivot bit appears in another
    basis vector."""
    basis = gf2_row_basis(matrix)
    for idx in range(len(basis)):
        low = basis[idx] & -basis[idx]
        for other in range(len(basis)):
            if other != idx and basis[other] & low:
                basis[other] ^= basis[idx]
    return sorted(basis, key=lambda b: b & -b)


def gf2_in_row_space(matrix: MatrixLike, vector_mask: int) -> bool:
    """True if ``vector_mask`` lies in the GF(2) row space of ``matrix``."""
    pivots: Dict[int, int] = {}
    for mask in _to_binary(matrix).row_masks:
        residue = _reduce(mask, pivots)
        if residue:
            pivots[residue & -residue] = residue
    return _reduce(vector_mask, pivots) == 0


def gf2_solve(matrix: BinaryMatrix, rhs: int) -> Optional[int]:
    """Find a row-selection mask ``s`` with ``XOR of selected rows == rhs``.

    Returns ``None`` when ``rhs`` is outside the row space.  Used by the
    qLDPC experiments to test row-space membership constructively.
    """
    pivots: Dict[int, Tuple[int, int]] = {}  # low-bit -> (mask, combo)
    for i, mask in enumerate(matrix.row_masks):
        combo = 1 << i
        while mask:
            low = mask & -mask
            entry = pivots.get(low)
            if entry is None:
                pivots[low] = (mask, combo)
                break
            mask ^= entry[0]
            combo ^= entry[1]
    residual, selection = rhs, 0
    while residual:
        low = residual & -residual
        entry = pivots.get(low)
        if entry is None:
            return None
        residual ^= entry[0]
        selection ^= entry[1]
    return selection


def gf2_nullspace(matrix: BinaryMatrix) -> List[int]:
    """Basis (as column masks over ``num_cols``) of ``{x : M x = 0}``."""
    transposed = matrix.transpose()
    pivots: Dict[int, Tuple[int, int]] = {}
    null_basis: List[int] = []
    for j, mask in enumerate(transposed.row_masks):
        combo = 1 << j
        while mask:
            low = mask & -mask
            entry = pivots.get(low)
            if entry is None:
                pivots[low] = (mask, combo)
                break
            mask ^= entry[0]
            combo ^= entry[1]
        else:
            null_basis.append(combo)
    return null_basis
