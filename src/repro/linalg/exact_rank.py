"""Exact rank over the rationals via fraction-free (Bareiss) elimination.

Eq. 3 of the paper — ``rank_R(M) <= r_B(M)`` — is SAP's termination
criterion, so the rank must be *exact*: floating-point ranks (numpy's SVD
threshold) can misjudge near-singular integer matrices.  One-step Bareiss
elimination stays in integers, every division is exact, and intermediate
entries are minors of the input (bounded by Hadamard's inequality), so
Python's big integers handle the paper's 100x100 instances comfortably.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.core.binary_matrix import BinaryMatrix

MatrixLike = Union[BinaryMatrix, np.ndarray, Sequence[Sequence[int]]]


def _to_int_rows(matrix: MatrixLike) -> List[List[int]]:
    if isinstance(matrix, BinaryMatrix):
        return matrix.to_lists()
    if isinstance(matrix, (list, tuple)) and len(matrix) == 0:
        return []
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2D matrix, got shape {arr.shape}")
    if arr.size and not np.equal(np.mod(arr, 1), 0).all():
        raise ValueError("exact rank requires integer entries")
    return [[int(x) for x in row] for row in arr.tolist()]


def rank_over_q(matrix: MatrixLike) -> int:
    """Exact rank of an integer matrix over the field of rationals."""
    rows = _to_int_rows(matrix)
    if not rows or not rows[0]:
        return 0
    num_rows, num_cols = len(rows), len(rows[0])
    rank = 0
    pivot_row = 0
    previous_pivot = 1
    for col in range(num_cols):
        swap = next(
            (r for r in range(pivot_row, num_rows) if rows[r][col] != 0),
            None,
        )
        if swap is None:
            continue
        rows[pivot_row], rows[swap] = rows[swap], rows[pivot_row]
        pivot = rows[pivot_row][col]
        for r in range(pivot_row + 1, num_rows):
            factor = rows[r][col]
            row_r = rows[r]
            row_p = rows[pivot_row]
            for c in range(col + 1, num_cols):
                # One-step Bareiss update; the division is exact.
                row_r[c] = (row_r[c] * pivot - factor * row_p[c]) // previous_pivot
            row_r[col] = 0
        previous_pivot = pivot
        rank += 1
        pivot_row += 1
        if pivot_row == num_rows:
            break
    return rank


def real_rank(matrix: MatrixLike) -> int:
    """Alias matching the paper's ``rank_R`` notation (exact, over Q)."""
    return rank_over_q(matrix)


def determinant(matrix: MatrixLike) -> int:
    """Exact determinant of a square integer matrix (Bareiss)."""
    rows = _to_int_rows(matrix)
    n = len(rows)
    if any(len(row) != n for row in rows):
        raise ValueError("determinant requires a square matrix")
    if n == 0:
        return 1
    sign = 1
    previous_pivot = 1
    for col in range(n - 1):
        swap = next((r for r in range(col, n) if rows[r][col] != 0), None)
        if swap is None:
            return 0
        if swap != col:
            rows[col], rows[swap] = rows[swap], rows[col]
            sign = -sign
        pivot = rows[col][col]
        for r in range(col + 1, n):
            factor = rows[r][col]
            for c in range(col + 1, n):
                rows[r][c] = (
                    rows[r][c] * pivot - factor * rows[col][c]
                ) // previous_pivot
            rows[r][col] = 0
        previous_pivot = pivot
    return sign * rows[n - 1][n - 1]
