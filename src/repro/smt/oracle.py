"""The decision oracle SAP drives: incremental ``r_B(M) <= b`` queries.

Wraps an encoder so that Algorithm 1's descending-bound loop maps onto
one long-lived solver.  Two query mechanisms are supported:

* ``query_mode='narrow'`` (the paper's): the first query builds the
  formula at the packing upper bound; each subsequent *strictly
  smaller* bound adds the ``f(e) != b`` narrowing clauses while keeping
  all learned clauses.
* ``query_mode='assumption'``: the formula is built once with monotone
  label-usage indicators and every bound becomes a one-literal
  assumption, so queries may move the bound in either direction — this
  is what lets SAP bisect on a single incremental solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import EncodingError
from repro.core.partition import Partition
from repro.sat.proof import ProofLog
from repro.sat.solver import SolveStatus
from repro.smt.encoder import make_encoder

QUERY_MODES = ("narrow", "assumption")


@dataclass
class OracleQuery:
    """Record of one decision query (feeds the Figure 4 analysis)."""

    bound: int
    status: SolveStatus
    seconds: float
    conflicts: int


@dataclass
class RankDecisionOracle:
    """Answers a sequence of ``r_B(M) <= b`` questions.

    Parameters mirror :func:`repro.smt.encoder.make_encoder`; with
    ``incremental=False`` every query rebuilds a fresh solver (ablation
    A2 compares the two modes).  ``proof=True`` attaches a clausal proof
    log to each underlying solver so UNSAT answers can be audited with
    :func:`repro.sat.proof.check_refutation` (narrow mode only — an
    assumption-mode UNSAT is conditional, not a refutation).
    """

    matrix: BinaryMatrix
    encoding: str = "direct"
    symmetry: str = "precedence"
    amo_encoding: str = "auto"
    incremental: bool = True
    query_mode: str = "narrow"
    proof: bool = False
    queries: List[OracleQuery] = field(default_factory=list)
    proof_log: Optional[ProofLog] = None
    _encoder: Optional[object] = None

    def __post_init__(self) -> None:
        if self.query_mode not in QUERY_MODES:
            raise EncodingError(
                f"query_mode must be one of {QUERY_MODES}, "
                f"got {self.query_mode!r}"
            )
        if self.query_mode == "assumption":
            if self.encoding != "direct":
                raise EncodingError(
                    "assumption queries require the direct encoding"
                )
            if not self.incremental:
                raise EncodingError(
                    "assumption queries are inherently incremental; "
                    "pass incremental=True"
                )

    def check_at_most(
        self,
        bound: int,
        *,
        conflict_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> Tuple[SolveStatus, Optional[Partition]]:
        """Is there an EBMF of size <= ``bound``?  Returns the partition
        on SAT.  In narrow mode bounds must not increase across calls;
        assumption mode accepts any bound at or below the first one.
        """
        import time

        started = time.perf_counter()
        encoder, assumptions = self._prepare(bound)
        conflicts_before = encoder.solver.stats.conflicts
        status = encoder.solve(
            assumptions=assumptions,
            conflict_budget=conflict_budget,
            time_budget=time_budget,
        )
        partition = None
        if status is SolveStatus.SAT:
            partition = encoder.extract_partition()
        self.queries.append(
            OracleQuery(
                bound=bound,
                status=status,
                seconds=time.perf_counter() - started,
                conflicts=encoder.solver.stats.conflicts - conflicts_before,
            )
        )
        return status, partition

    def prime(self, bound: int) -> None:
        """Pre-build the formula at ``bound`` without solving.

        Assumption-mode bisection must prime at the largest bound it may
        ever query, since the structural bound cannot widen later.
        """
        if self._encoder is None:
            self._encoder = self._build(bound)

    def _prepare(self, bound: int) -> Tuple[object, List[int]]:
        if self.query_mode == "assumption":
            if self._encoder is None:
                self._encoder = self._build(bound)
            if bound > self._encoder.bound:
                raise EncodingError(
                    f"assumption oracle built for bounds <= "
                    f"{self._encoder.bound}, got {bound}"
                )
            return self._encoder, self._encoder.assumption_for(bound)
        if not self.incremental or self._encoder is None:
            self._encoder = self._build(bound)
            return self._encoder, []
        if bound > self._encoder.bound:
            raise EncodingError(
                f"incremental oracle cannot widen bound "
                f"{self._encoder.bound} -> {bound}"
            )
        if bound < self._encoder.bound:
            self._encoder.narrow_to(bound)
        return self._encoder, []

    def _build(self, bound: int):
        if self.proof:
            self.proof_log = ProofLog()
        return make_encoder(
            self.matrix,
            bound,
            encoding=self.encoding,
            symmetry=self.symmetry,
            amo_encoding=self.amo_encoding,
            proof=self.proof_log,
            indicators=self.query_mode == "assumption",
        )

    def verify_refutation(self) -> None:
        """Independently check the UNSAT proof of the last descent.

        Only meaningful after an unconditional UNSAT answer from a
        proof-enabled, narrow-mode oracle; raises
        :class:`~repro.core.exceptions.ProofError` otherwise.
        """
        from repro.core.exceptions import ProofError
        from repro.sat.proof import check_refutation

        if self.proof_log is None:
            raise ProofError("oracle was not created with proof=True")
        check_refutation(self.proof_log)

    @property
    def total_seconds(self) -> float:
        return sum(query.seconds for query in self.queries)
