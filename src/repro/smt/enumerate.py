"""Enumerating rectangle partitions via blocking clauses.

Beyond deciding ``r_B(M) <= b``, the SAT oracle can enumerate *all*
partitions at a given depth: after each model, a blocking clause forbids
that exact cell-labelling up to label renaming (the canonical
first-occurrence labelling the symmetry breaking already enforces), and
the solver is asked again.  Useful for studying solution diversity and
for control-stack co-optimization (pick the partition with the best
schedule cost, not just the best depth).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import EncodingError
from repro.core.partition import Partition
from repro.sat.solver import SolveStatus
from repro.smt.encoder import DirectEncoder


def enumerate_partitions(
    matrix: BinaryMatrix,
    depth: int,
    *,
    limit: Optional[int] = None,
    time_budget_per_model: Optional[float] = None,
) -> Iterator[Partition]:
    """Yield distinct partitions of ``matrix`` with at most ``depth``
    rectangles (distinct as *sets of rectangles*, label order ignored).

    Uses the precedence-symmetry encoder, so each distinct partition
    corresponds to exactly one canonical labelling; blocking that
    labelling blocks exactly that partition.
    """
    if depth < 0:
        raise EncodingError(f"depth must be >= 0, got {depth}")
    if matrix.is_zero():
        if depth >= 0:
            yield Partition([], matrix.shape)
        return

    encoder = DirectEncoder(matrix, depth, symmetry="precedence")
    produced = 0
    while limit is None or produced < limit:
        status = encoder.solve(time_budget=time_budget_per_model)
        if status is not SolveStatus.SAT:
            return
        partition = encoder.extract_partition()
        yield partition
        produced += 1
        # Block this exact canonical labelling.
        blocking: List[int] = []
        for t, cell in enumerate(encoder.cells):
            for k in range(encoder.bound):
                var = encoder._vars[t][k]
                if encoder.solver.model_value(var):
                    blocking.append(-var)
        encoder.solver.add_clause(blocking)


def count_optimal_partitions(
    matrix: BinaryMatrix,
    *,
    binary_rank: Optional[int] = None,
    limit: int = 10_000,
    time_budget: Optional[float] = None,
) -> int:
    """Number of distinct optimal partitions (up to ``limit``).

    ``binary_rank`` may be passed if already known; otherwise SAP
    computes it first.
    """
    if binary_rank is None:
        from repro.solvers.sap import SapOptions, sap_solve

        result = sap_solve(
            matrix,
            options=SapOptions(trials=16, seed=0, time_budget=time_budget),
        )
        if not result.proved_optimal:
            raise EncodingError(
                "binary rank not proven within budget; pass binary_rank="
            )
        binary_rank = result.depth
    count = 0
    for _ in enumerate_partitions(
        matrix,
        binary_rank,
        limit=limit,
        time_budget_per_model=time_budget,
    ):
        count += 1
    return count
