"""SMT-style encodings of the EBMF decision problem (paper Section III-A)."""

from repro.smt.encoder import (
    SYMMETRY_MODES,
    BinaryLabelEncoder,
    DirectEncoder,
    make_encoder,
)
from repro.smt.enumerate import count_optimal_partitions, enumerate_partitions
from repro.smt.oracle import OracleQuery, RankDecisionOracle

__all__ = [
    "SYMMETRY_MODES",
    "BinaryLabelEncoder",
    "DirectEncoder",
    "OracleQuery",
    "RankDecisionOracle",
    "count_optimal_partitions",
    "enumerate_partitions",
    "make_encoder",
]
