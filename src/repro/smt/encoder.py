"""CNF encodings of the EBMF decision problem ``r_B(M) <= b``.

The paper (Section III-A) encodes a function ``f : E -> P`` from 1-cells
to rectangle indices with z3's uninterpreted functions over bit-vectors,
constrained by Eq. 4: for distinct 1-cells ``e = (i, j)`` and
``e' = (i', j')``,

* ``f(e) != f(e')``                                if ``M[i, j'] = 0``,
* ``f(e) = f(e')  ->  f(e) = f((i, j'))``          if ``M[i, j'] = 1``.

(The same constraints with the roles swapped cover the ``M[i', j]`` cross
cell.)  Cells sharing a row or column need no constraint — the rectangle
closure property (Eq. 1) is trivial for them.  Any satisfying labelling's
label classes are therefore rectangles, pairwise disjoint, covering all
1s: a valid EBMF with at most ``b`` rectangles.

Two encodings are provided:

* :class:`DirectEncoder` — one boolean ``x[e, k]`` per cell/label
  ("one-hot"), with exactly-one constraints per cell and optional
  precedence symmetry breaking.  Default; strongest for UNSAT proofs.
* :class:`BinaryLabelEncoder` — per-cell bit-vector labels with Tseitin
  equality gates, mirroring the paper's bit-vector formulation.

Both support the paper's incremental narrowing (Algorithm 1, line 8):
``narrow_to(b)`` adds ``f(e) != b`` for every 1-cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import EncodingError, SolverError
from repro.core.partition import Partition
from repro.sat.cardinality import exactly_one
from repro.sat.proof import ProofLog
from repro.sat.solver import CdclSolver, SolveStatus
from repro.sat.tseitin import encode_less_than_constant, gate_equals

Cell = Tuple[int, int]

SYMMETRY_MODES = ("none", "restricted", "precedence")


def _cell_pairs_constraints(matrix: BinaryMatrix, cells: Sequence[Cell]):
    """Classify all unordered cell pairs per Eq. 4.

    Yields ``("conflict", e, e2)`` when the cells can never share a
    rectangle and ``("closure", e, e2, cross)`` when sharing forces the
    cross cell ``cross`` into the same rectangle.
    """
    index = {cell: t for t, cell in enumerate(cells)}
    for a in range(len(cells)):
        i, j = cells[a]
        for b in range(a + 1, len(cells)):
            i2, j2 = cells[b]
            if i == i2 or j == j2:
                continue
            cross_a = matrix[i, j2]
            cross_b = matrix[i2, j]
            if cross_a == 0 or cross_b == 0:
                yield ("conflict", a, b, None)
            else:
                yield ("closure", a, b, index[(i, j2)])
                yield ("closure", a, b, index[(i2, j)])


class DirectEncoder:
    """One-hot label encoding of ``r_B(M) <= bound``.

    Variables ``x[t][k]`` mean "1-cell number ``t`` belongs to rectangle
    ``k``".  Narrowing to smaller bounds adds blocking units, so a single
    solver instance serves the whole SAP descent, retaining learned
    clauses between queries.

    With ``indicators=True`` the encoder additionally creates one
    monotone *usage* variable per label (``use[k]`` true whenever some
    cell takes label ``k``, and ``use[k] -> use[k-1]``).  The question
    ``r_B(M) <= b`` then becomes solving under the single assumption
    ``not use[b]`` — no clauses are added per query, so one solver
    serves bounds moving in *either* direction (SAP's ``assumption``
    descent bisects on it).
    """

    def __init__(
        self,
        matrix: BinaryMatrix,
        bound: int,
        *,
        symmetry: str = "precedence",
        amo_encoding: str = "auto",
        proof: Optional[ProofLog] = None,
        indicators: bool = False,
    ) -> None:
        if bound < 0:
            raise EncodingError(f"bound must be >= 0, got {bound}")
        if symmetry not in SYMMETRY_MODES:
            raise EncodingError(
                f"unknown symmetry mode {symmetry!r}; "
                f"expected one of {SYMMETRY_MODES}"
            )
        self.matrix = matrix
        self.cells: List[Cell] = list(matrix.ones())
        self.bound = bound
        self.symmetry = symmetry
        self.proof = proof
        self.solver = CdclSolver(proof=proof)
        self._trivially_unsat = False
        self._use: List[int] = []

        if not self.cells:
            # Zero matrix: any bound >= 0 works.
            return
        if bound == 0:
            self._trivially_unsat = True
            return

        num_cells = len(self.cells)
        self._vars: List[List[int]] = [
            [self.solver.new_var() for _ in range(bound)]
            for _ in range(num_cells)
        ]

        if indicators:
            self._use = [self.solver.new_var() for _ in range(bound)]
            for k in range(1, bound):
                self.solver.add_clause([-self._use[k], self._use[k - 1]])
            for t in range(num_cells):
                for k in range(bound):
                    self.solver.add_clause(
                        [-self._vars[t][k], self._use[k]]
                    )

        for t in range(num_cells):
            literals = self._vars[t]
            if symmetry in ("restricted", "precedence"):
                usable = literals[: min(bound, t + 1)]
                for banned in literals[len(usable) :]:
                    self.solver.add_clause([-banned])
            else:
                usable = literals
            exactly_one(self.solver, usable, encoding=amo_encoding)

        if symmetry == "precedence":
            # x[t][k] -> OR_{s<t} x[s][k-1]: label k may only be opened
            # after label k-1 has been used by an earlier cell.
            for t in range(num_cells):
                for k in range(1, min(bound, t + 1)):
                    clause = [-self._vars[t][k]]
                    clause.extend(self._vars[s][k - 1] for s in range(k - 1, t))
                    self.solver.add_clause(clause)

        for kind, a, b, cross in _cell_pairs_constraints(matrix, self.cells):
            if kind == "conflict":
                for k in range(bound):
                    self.solver.add_clause(
                        [-self._vars[a][k], -self._vars[b][k]]
                    )
            else:
                for k in range(bound):
                    self.solver.add_clause(
                        [
                            -self._vars[a][k],
                            -self._vars[b][k],
                            self._vars[cross][k],
                        ]
                    )

    # ------------------------------------------------------------------
    @property
    def has_indicators(self) -> bool:
        return bool(self._use)

    def assumption_for(self, bound: int) -> List[int]:
        """Assumption literals asking ``r_B(M) <= bound`` (indicator mode).

        An empty list means the structural bound already enforces it.
        """
        if not self._use:
            raise EncodingError(
                "encoder was built without indicators; "
                "use narrow_to or rebuild with indicators=True"
            )
        if bound < 0:
            raise EncodingError(f"bound must be >= 0, got {bound}")
        if bound >= self.bound:
            return []
        return [-self._use[bound]]

    def narrow_to(self, bound: int) -> None:
        """Forbid labels >= ``bound`` (the paper's ``f(e) != b`` clauses)."""
        if bound > self.bound:
            raise EncodingError(
                f"cannot widen from {self.bound} to {bound}; re-encode instead"
            )
        if bound < 0:
            raise EncodingError(f"bound must be >= 0, got {bound}")
        if not self.cells:
            self.bound = bound
            return
        if bound == 0:
            self._trivially_unsat = True
            self.bound = 0
            return
        for t in range(len(self.cells)):
            for k in range(bound, self.bound):
                self.solver.add_clause([-self._vars[t][k]])
        self.bound = bound

    def solve(
        self,
        *,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SolveStatus:
        if not self.cells:
            return SolveStatus.SAT
        if self._trivially_unsat:
            return SolveStatus.UNSAT
        return self.solver.solve(
            assumptions,
            conflict_budget=conflict_budget,
            time_budget=time_budget,
        )

    def extract_partition(self) -> Partition:
        """Decode the last SAT model into a validated partition."""
        if not self.cells:
            return Partition([], self.matrix.shape)
        labels: Dict[Cell, int] = {}
        for t, cell in enumerate(self.cells):
            assigned = [
                k for k in range(self.bound) if self.solver.model_value(self._vars[t][k])
            ]
            if len(assigned) != 1:
                raise SolverError(
                    f"cell {cell} has {len(assigned)} labels in the model"
                )
            labels[cell] = assigned[0]
        partition = Partition.from_assignment(self.matrix, labels)
        partition.validate(self.matrix)
        return partition


class BinaryLabelEncoder:
    """Bit-vector label encoding of ``r_B(M) <= bound``.

    Each 1-cell carries a ``ceil(log2(bound))``-wide label; rectangle
    sharing becomes label equality through Tseitin gates — structurally
    the closest CNF rendition of the paper's bit-vector SMT encoding.
    Narrowing adds ``label < bound`` range clauses.
    """

    def __init__(
        self,
        matrix: BinaryMatrix,
        bound: int,
        *,
        proof: Optional[ProofLog] = None,
    ) -> None:
        if bound < 0:
            raise EncodingError(f"bound must be >= 0, got {bound}")
        self.matrix = matrix
        self.cells: List[Cell] = list(matrix.ones())
        self.bound = bound
        self.proof = proof
        self.solver = CdclSolver(proof=proof)
        self._trivially_unsat = False

        if not self.cells:
            return
        if bound == 0:
            self._trivially_unsat = True
            return

        self.width = max(1, (bound - 1).bit_length())
        self._labels: List[List[int]] = [
            [self.solver.new_var() for _ in range(self.width)]
            for _ in range(len(self.cells))
        ]
        for bits in self._labels:
            encode_less_than_constant(self.solver, bits, bound)

        self._eq_cache: Dict[Tuple[int, int], int] = {}
        for kind, a, b, cross in _cell_pairs_constraints(matrix, self.cells):
            if kind == "conflict":
                eq = self._equality(a, b)
                self.solver.add_clause([-eq])
            else:
                eq_ab = self._equality(a, b)
                eq_ac = self._equality(a, cross)
                self.solver.add_clause([-eq_ab, eq_ac])

    def _equality(self, a: int, b: int) -> int:
        key = (a, b) if a < b else (b, a)
        cached = self._eq_cache.get(key)
        if cached is None:
            cached = gate_equals(self.solver, self._labels[key[0]], self._labels[key[1]])
            self._eq_cache[key] = cached
        return cached

    def narrow_to(self, bound: int) -> None:
        if bound > self.bound:
            raise EncodingError(
                f"cannot widen from {self.bound} to {bound}; re-encode instead"
            )
        if bound < 0:
            raise EncodingError(f"bound must be >= 0, got {bound}")
        if not self.cells:
            self.bound = bound
            return
        if bound == 0:
            self._trivially_unsat = True
            self.bound = 0
            return
        for bits in self._labels:
            encode_less_than_constant(self.solver, bits, bound)
        self.bound = bound

    def solve(
        self,
        *,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SolveStatus:
        if not self.cells:
            return SolveStatus.SAT
        if self._trivially_unsat:
            return SolveStatus.UNSAT
        return self.solver.solve(
            assumptions,
            conflict_budget=conflict_budget,
            time_budget=time_budget,
        )

    def extract_partition(self) -> Partition:
        if not self.cells:
            return Partition([], self.matrix.shape)
        labels: Dict[Cell, int] = {}
        for t, cell in enumerate(self.cells):
            value = 0
            for position, var in enumerate(self._labels[t]):
                if self.solver.model_value(var):
                    value |= 1 << position
            labels[cell] = value
        partition = Partition.from_assignment(self.matrix, labels)
        partition.validate(self.matrix)
        return partition


def make_encoder(
    matrix: BinaryMatrix,
    bound: int,
    *,
    encoding: str = "direct",
    symmetry: str = "precedence",
    amo_encoding: str = "auto",
    proof: Optional[ProofLog] = None,
    indicators: bool = False,
):
    """Factory over the two encoders (``direct`` | ``binary``)."""
    if encoding == "direct":
        return DirectEncoder(
            matrix,
            bound,
            symmetry=symmetry,
            amo_encoding=amo_encoding,
            proof=proof,
            indicators=indicators,
        )
    if encoding == "binary":
        if indicators:
            raise EncodingError(
                "usage indicators require the direct encoding"
            )
        return BinaryLabelEncoder(matrix, bound, proof=proof)
    raise EncodingError(f"unknown encoding {encoding!r}")
