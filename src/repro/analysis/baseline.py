"""Checked-in baseline of grandfathered lint findings.

The gate fails on any finding *not* in the baseline, so new violations
cannot land while deliberate ones (each with a recorded reason — see
``baselines/lint_baseline.json``) stay visible instead of silently
suppressed.  Files are written through
:func:`repro.utils.fileio.atomic_write_json` with sorted keys, so
``--update-baseline`` round-trips byte-identically for an unchanged
tree.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.core.exceptions import AnalysisError
from repro.analysis.findings import Finding, fingerprint_findings
from repro.utils.fileio import atomic_write_json

BASELINE_TYPE = "repro_lint_baseline"
BASELINE_VERSION = 1
DEFAULT_BASELINE = "baselines/lint_baseline.json"
"""Repo-relative default path of the checked-in baseline."""


def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    """Fingerprint -> entry mapping; an absent file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return {}
    try:
        with open(path) as stream:
            payload = json.load(stream)
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot load baseline {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("type") != BASELINE_TYPE
    ):
        raise AnalysisError(
            f"{path} is not a lint baseline "
            f"(type={payload.get('type') if isinstance(payload, dict) else None!r})"
        )
    if payload.get("version", 0) > BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} has version {payload['version']}, newer "
            f"than supported {BASELINE_VERSION}"
        )
    findings = payload.get("findings", {})
    if not isinstance(findings, dict):
        raise AnalysisError(
            f"baseline {path}: 'findings' must be an object, "
            f"got {type(findings).__name__}"
        )
    return findings


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Rewrite ``path`` from the given findings (sorted, atomic)."""
    entries: Dict[str, Dict[str, object]] = {}
    for fingerprint, finding in fingerprint_findings(findings):
        entries[fingerprint] = {
            "rule": finding.rule_id,
            "path": finding.path,
            "message": finding.message,
            "line_text": finding.line_text,
        }
    atomic_write_json(
        Path(path),
        {
            "type": BASELINE_TYPE,
            "version": BASELINE_VERSION,
            "findings": entries,
        },
        sort_keys=True,
    )


def split_by_baseline(
    findings: Iterable[Finding],
    baseline: Dict[str, Dict[str, object]],
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """``(new, grandfathered, stale_fingerprints)``.

    *new* findings fail the gate; *grandfathered* ones match a baseline
    entry; *stale* fingerprints are baseline entries whose finding no
    longer occurs (the violation was fixed — run ``--update-baseline``
    to shed them).
    """
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    matched = set()
    for fingerprint, finding in fingerprint_findings(findings):
        if fingerprint in baseline:
            matched.add(fingerprint)
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - matched)
    return new, grandfathered, stale
