"""AST-based static analysis: the repo's invariants, machine-checked.

The serving stack's correctness story rests on invariants that no unit
test can watch globally — byte-identical provenance needs seeded RNG
everywhere, budget math needs monotonic clocks, spawn-context executors
need picklable callables, recovery paths must fail loudly, and every
fault seam must stay chaos-tested.  This package turns those reviewer
rules into ``REPnnn`` lint rules run by ``python -m repro lint`` and
gated in tier-1 (``tests/analysis/``).

Layout: :mod:`engine` (file collection, parsing, rule dispatch,
suppression filtering), :mod:`findings` (records + baseline
fingerprints), :mod:`suppress` (``# repro-lint: disable=...``
comments), :mod:`baseline` (grandfathered findings), :mod:`rules` (the
registry), :mod:`cli` (the ``lint`` subcommand).  The full catalogue —
each rule, the invariant it protects, and how to suppress — lives in
``docs/static-analysis.md``.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    DEFAULT_SCAN_ROOTS,
    Analyzer,
    FileContext,
    FileRule,
    Project,
    ProjectRule,
    Report,
    Rule,
)
from repro.analysis.findings import Finding, fingerprint_findings
from repro.analysis.rules import default_rules, rules_by_id, select_rules
from repro.analysis.suppress import Suppressions, parse_suppressions

__all__ = [
    "Analyzer",
    "DEFAULT_BASELINE",
    "DEFAULT_SCAN_ROOTS",
    "FileContext",
    "FileRule",
    "Finding",
    "Project",
    "ProjectRule",
    "Report",
    "Rule",
    "Suppressions",
    "default_rules",
    "fingerprint_findings",
    "load_baseline",
    "parse_suppressions",
    "rules_by_id",
    "select_rules",
    "split_by_baseline",
    "write_baseline",
]
