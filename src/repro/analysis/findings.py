"""Finding records and stable fingerprints for the lint baseline.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* deliberately hashes the offending line's **text** rather
than its line number, so unrelated edits above a grandfathered finding
do not invalidate the baseline; identical lines in one file are
disambiguated by occurrence order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation: where, what, and how to fix it."""

    rule_id: str
    path: str
    """Repo-relative POSIX path of the offending file."""
    line: int
    """1-based line of the violation."""
    col: int
    """0-based column of the violation."""
    message: str
    hint: str = ""
    """Actionable fix suggestion shown next to the message."""
    line_text: str = ""
    """Stripped source text of :attr:`line` (fingerprint input)."""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=Finding.sort_key)


def fingerprint_findings(
    findings: Iterable[Finding],
) -> List[Tuple[str, Finding]]:
    """Pair each finding with its stable fingerprint.

    The fingerprint hashes ``(rule, path, stripped line text,
    occurrence)`` where *occurrence* counts duplicates of that triple in
    sort order — so moving a line does not churn the baseline, but two
    identical violations stay distinct entries.
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    paired: List[Tuple[str, Finding]] = []
    for finding in sort_findings(findings):
        key = (finding.rule_id, finding.path, finding.line_text)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        digest = hashlib.sha256(
            "\n".join(
                (
                    finding.rule_id,
                    finding.path,
                    finding.line_text,
                    str(occurrence),
                )
            ).encode("utf-8")
        ).hexdigest()[:16]
        paired.append((digest, finding))
    return paired
