"""``python -m repro lint`` — the repo's invariant checker front door.

    python -m repro lint [PATHS...] [--format {text,json}]
    python -m repro lint --update-baseline
    python -m repro lint --rules REP001,REP005
    python -m repro lint --list-rules

Scans ``src/repro``, ``benchmarks``, and ``examples`` by default (or
the given files/directories), applies every registered REP rule, and
filters findings through inline suppressions and the checked-in
baseline (``baselines/lint_baseline.json``).  Exit codes follow the
rest of the CLI: 0 clean, 1 non-baselined findings, 2 internal analyzer
errors (a rule crashed, an unreadable baseline) — findings are data,
analyzer failures are not.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.exceptions import AnalysisError
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_by_baseline,
)
from repro.analysis.engine import Analyzer, Report
from repro.analysis.rules import default_rules, select_rules


def detect_root(explicit: Optional[str] = None) -> Path:
    """The repo root the default scan paths are relative to.

    Preference order: an explicit ``--root``, a cwd that looks like the
    checkout (has ``src/repro``), else the checkout this module was
    imported from (``src/repro/analysis/cli.py`` -> three parents up).
    """
    if explicit:
        root = Path(explicit).resolve()
        if not root.is_dir():
            raise AnalysisError(f"--root {explicit!r} is not a directory")
        return root
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    return Path(__file__).resolve().parents[3]


def _validate_paths(root: Path, paths: List[str]) -> None:
    for entry in paths:
        target = Path(entry)
        if not target.is_absolute():
            target = root / target
        if not target.exists():
            raise AnalysisError(f"lint path does not exist: {entry}")


def _print_text(
    report: Report,
    new: List,
    grandfathered: List,
    stale: List[str],
) -> None:
    for finding in new:
        print(finding.format())
    summary = (
        f"{len(new)} finding(s) in {report.files_scanned} file(s)"
        f" ({len(grandfathered)} baselined, "
        f"{len(report.suppressed)} suppressed)"
    )
    if stale:
        summary += (
            f"; {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} — "
            f"run --update-baseline to shed fixed findings"
        )
    print(summary)


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    root = detect_root(args.root)
    rules = select_rules(args.rules)
    paths = args.paths or None
    if paths:
        _validate_paths(root, paths)
    report = Analyzer(root, rules=rules, paths=paths).run()
    baseline_path = Path(args.baseline) if args.baseline else (
        root / DEFAULT_BASELINE
    )
    if args.update_baseline:
        from repro.analysis.baseline import write_baseline

        write_baseline(baseline_path, report.findings)
        print(
            f"wrote {baseline_path}: {len(report.findings)} "
            f"grandfathered finding(s)"
        )
        return 0
    baseline = load_baseline(baseline_path)
    new, grandfathered, stale = split_by_baseline(
        report.findings, baseline
    )
    if args.format == "json":
        payload = {
            "findings": [f.as_dict() for f in new],
            "baselined": len(grandfathered),
            "suppressed": len(report.suppressed),
            "stale_baseline_entries": stale,
            "files_scanned": report.files_scanned,
            "rules": report.rule_ids,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _print_text(report, new, grandfathered, stale)
    return 1 if new else 0


def add_lint_parser(sub) -> None:
    """Attach the ``lint`` command to the top-level parser."""
    parser = sub.add_parser(
        "lint",
        help="AST-based invariant checker (determinism, spawn safety, "
        "async discipline)",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro, "
        "benchmarks, examples under the repo root)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root for relative paths and the default baseline "
        "(default: auto-detected checkout root)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="finding output format (default text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default {DEFAULT_BASELINE} under the root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run's findings "
        "(byte-identical for an unchanged tree)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule-id subset (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.set_defaults(func=cmd_lint)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (the repro CLI wraps this normally)."""
    parser = argparse.ArgumentParser(prog="repro-lint")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(sub)
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
