"""REP001/REP002 — the determinism rules.

The paper's byte-identical-provenance contract (pool-size-independent
batches, reproducible scoreboard baselines) dies the moment any code
path draws from process-global randomness or reads the wall clock where
budget math expects a monotonic source.  These two rules pin that down
mechanically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, FileRule
from repro.analysis.findings import Finding

RNG_HOME = "src/repro/utils/rng.py"
"""The one module allowed to touch :mod:`random` construction escape
hatches (``ensure_rng(None)`` is its documented nondeterministic door)."""

_SEEDED_CONSTRUCTORS = {"Random", "SystemRandom"}


class NoGlobalRngRule(FileRule):
    """REP001: no unseeded/global RNG outside ``utils/rng.py``.

    Global ``random.*`` functions draw from the interpreter-wide
    generator, so results depend on import order and whatever else ran
    first; ``np.random.*`` is the same trap one library over.  Seeded
    ``random.Random(seed)`` instances pass.
    """

    rule_id = "REP001"
    title = "no unseeded or process-global RNG"
    hint = (
        "thread a seeded random.Random through "
        "repro.utils.rng.ensure_rng/spawn_seeds"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath != RNG_HOME

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name not in _SEEDED_CONSTRUCTORS
                ]
                if bad:
                    yield self.finding(
                        ctx,
                        node,
                        f"importing global RNG function(s) "
                        f"{', '.join(sorted(bad))} from random",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr == "SystemRandom":
                    continue
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            "random.Random() without a seed is "
                            "nondeterministic",
                        )
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"call to process-global random.{func.attr}()",
                )
            elif isinstance(func, ast.Attribute) and self._is_np_random(
                func.value
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"call to process-global np.random.{func.attr}()",
                    hint="use np.random.default_rng(seed) threaded from "
                    "the caller",
                )

    @staticmethod
    def _is_np_random(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        )


WALL_CLOCK_SCOPE = (
    "src/repro/solvers/",
    "src/repro/service/",
    "src/repro/server/",
    "src/repro/sat/",
    "src/repro/smt/",
    "benchmarks/",
)
"""Solver, provenance, budget, and benchmark paths: anywhere a duration
or deadline computed from ``time.time()`` would jump under NTP slew."""

_WALL_CLOCK_ATTRS = {"time", "time_ns"}
_DATETIME_ATTRS = {"now", "utcnow", "today"}


class NoWallClockRule(FileRule):
    """REP002: budget/provenance paths must use monotonic clocks.

    ``time.time()`` is settable and slews; a deadline computed from it
    can expire early, late, or never.  ``time.monotonic()`` /
    ``time.perf_counter()`` measure durations correctly, which is all
    these paths ever need.
    """

    rule_id = "REP002"
    title = "no wall-clock reads in solver/budget/provenance paths"
    hint = "use time.monotonic() or time.perf_counter()"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(WALL_CLOCK_SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name in _WALL_CLOCK_ATTRS
                ]
                if bad:
                    yield self.finding(
                        ctx,
                        node,
                        f"importing wall-clock {', '.join(sorted(bad))} "
                        f"from time",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id == "time"
                and func.attr in _WALL_CLOCK_ATTRS
            ):
                yield self.finding(
                    ctx, node, f"wall-clock read time.{func.attr}()"
                )
            elif func.attr in _DATETIME_ATTRS and self._is_datetime(value):
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read datetime.{func.attr}()",
                )

    @staticmethod
    def _is_datetime(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("datetime", "date")
        return (
            isinstance(node, ast.Attribute)
            and node.attr in ("datetime", "date")
            and isinstance(node.value, ast.Name)
            and node.value.id == "datetime"
        )
