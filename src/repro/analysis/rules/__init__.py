"""The rule registry for ``python -m repro lint``.

Rules are instantiated fresh per call (they are stateless, but cheap
insurance), keyed by their ``REPnnn`` ids.  New rules register here —
the engine, CLI, baseline, and docs all enumerate from this one list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.exceptions import AnalysisError
from repro.analysis.engine import Rule
from repro.analysis.rules.determinism import (
    NoGlobalRngRule,
    NoWallClockRule,
)
from repro.analysis.rules.async_discipline import NoBlockingInAsyncRule
from repro.analysis.rules.spawn_safety import SpawnSafeSubmitRule
from repro.analysis.rules.serialization import (
    FlockShardIoRule,
    SortedJsonRule,
    StoreArtifactWriteRule,
)
from repro.analysis.rules.robustness import (
    FaultSeamCoverageRule,
    NoSilentExceptRule,
)

_RULE_CLASSES = (
    NoGlobalRngRule,
    NoWallClockRule,
    NoBlockingInAsyncRule,
    SpawnSafeSubmitRule,
    SortedJsonRule,
    FlockShardIoRule,
    NoSilentExceptRule,
    FaultSeamCoverageRule,
    StoreArtifactWriteRule,
)


def default_rules() -> List[Rule]:
    """One fresh instance of every registered rule, in id order."""
    rules = [cls() for cls in _RULE_CLASSES]
    rules.sort(key=lambda rule: rule.rule_id)
    return rules


def rules_by_id() -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in default_rules()}


def select_rules(spec: Optional[str]) -> List[Rule]:
    """Resolve a comma-separated ``--rules`` subset (None = all)."""
    if not spec:
        return default_rules()
    available = rules_by_id()
    chosen: List[Rule] = []
    for rule_id in spec.split(","):
        rule_id = rule_id.strip()
        if not rule_id:
            continue
        if rule_id not in available:
            raise AnalysisError(
                f"unknown rule {rule_id!r} "
                f"(available: {', '.join(sorted(available))})"
            )
        chosen.append(available[rule_id])
    if not chosen:
        raise AnalysisError(f"--rules {spec!r} selects no rules")
    return chosen
