"""REP004 — spawn-safe process-pool submission.

The engine's process executors use the *spawn* context (PR 3: workers
must not inherit server connection fds), and spawn pickles every
submitted callable.  Lambdas and nested functions are not picklable, so
code that works under fork explodes the moment the context flips —
exactly the class of bug that only fires on the platform you did not
test.  The rule flags unpicklable callables handed to executor-shaped
call sites in modules that use process pools.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.engine import FileContext, FileRule
from repro.analysis.findings import Finding

_SUBMIT_METHODS = {"submit", "apply_async"}


def _uses_process_pools(tree: ast.AST) -> bool:
    """Does this module touch ProcessPoolExecutor / multiprocessing?"""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == "ProcessPoolExecutor":
            return True
        if isinstance(node, ast.Attribute) and node.attr in (
            "ProcessPoolExecutor",
            "Pool",
        ):
            return True
        if isinstance(node, ast.Import):
            if any(
                alias.name.split(".")[0] == "multiprocessing"
                for alias in node.names
            ):
                return True
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.split(".")[0] == "multiprocessing":
                return True
            if module.startswith("concurrent") and any(
                alias.name == "ProcessPoolExecutor"
                for alias in node.names
            ):
                return True
    return False


def _nested_function_names(tree: ast.AST) -> Set[str]:
    """Names of functions defined *inside* another function."""
    nested: Set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if inside_function:
                    nested.add(child.name)
                walk(child, True)
            elif isinstance(child, ast.Lambda):
                walk(child, True)
            else:
                walk(child, inside_function)

    walk(tree, False)
    return nested


class SpawnSafeSubmitRule(FileRule):
    """REP004: only picklable callables go to process executors."""

    rule_id = "REP004"
    title = "no lambdas/closures submitted to process executors"
    hint = (
        "hoist the callable to module level (spawn pickles it by "
        "qualified name) and pass state through its arguments"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _uses_process_pools(ctx.tree):
            return
        nested = _nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in _SUBMIT_METHODS
                or not node.args
            ):
                continue
            target = node.args[0]
            reason = self._unpicklable_reason(target, nested)
            if reason is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{reason} passed to .{func.attr}() — not "
                    f"picklable under a spawn context",
                )

    @staticmethod
    def _unpicklable_reason(
        target: ast.AST, nested: Set[str]
    ) -> Optional[str]:
        if isinstance(target, ast.Lambda):
            return "lambda"
        if isinstance(target, ast.Name) and target.id in nested:
            return f"nested function {target.id!r}"
        if (
            isinstance(target, ast.Call)
            and isinstance(target.func, (ast.Name, ast.Attribute))
            and (
                getattr(target.func, "id", None) == "partial"
                or getattr(target.func, "attr", None) == "partial"
            )
            and target.args
        ):
            inner = SpawnSafeSubmitRule._unpicklable_reason(
                target.args[0], nested
            )
            if inner is not None:
                return f"functools.partial over a {inner}"
        return None
