"""REP005/REP006/REP009 — artifact-serialization discipline.

REP005 guards the byte-identical-reproduction contract: every JSON
artifact with a checked-in baseline (``BENCH_*.json``, scoreboard
baselines, provenance dumps) must be written with ``sort_keys=True``,
or dict insertion order leaks into the bytes and every diff is noise.

REP006 guards the sharded cache's crash-safety story: shard files are
only read/written inside :mod:`repro.server.shards`'s lock-holding
helpers — an ``open()`` of a shard path anywhere else bypasses both the
flock and the atomic-replace protocol.

REP009 extends the same discipline to every *other* file living inside
a cache store directory — the GC journal, the maintained index, the
persisted store limits.  The crash-recovery matrix in
``docs/cache-lifecycle.md`` only holds if each of those files is
written by exactly one locked, atomic-replace helper; a stray write
from anywhere else can tear the journal out from under a resume or
desynchronize the index silently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, FileRule
from repro.analysis.findings import Finding

SORTED_JSON_SCOPE = (
    "src/repro/corpus/",
    "src/repro/experiments/",
    "src/repro/utils/",
    "src/repro/service/",
    "src/repro/server/",
    "benchmarks/",
)
"""Writer paths feeding baselined artifacts (BENCH_*.json, scoreboard
baselines, cache files, provenance dumps)."""


class SortedJsonRule(FileRule):
    """REP005: ``json.dump`` in artifact writers needs ``sort_keys=True``."""

    rule_id = "REP005"
    title = "json.dump without sort_keys in artifact writers"
    hint = (
        "pass sort_keys=True (or write through "
        "repro.utils.fileio.atomic_write_json / "
        "repro.experiments.common.write_json)"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(SORTED_JSON_SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "dump"
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                continue
            sort_kw = next(
                (
                    kw
                    for kw in node.keywords
                    if kw.arg == "sort_keys"
                ),
                None,
            )
            if sort_kw is None:
                yield self.finding(
                    ctx,
                    node,
                    "json.dump without sort_keys — artifact bytes "
                    "depend on dict insertion order",
                )
            elif (
                isinstance(sort_kw.value, ast.Constant)
                and sort_kw.value.value is False
            ):
                yield self.finding(
                    ctx,
                    node,
                    "json.dump with sort_keys=False in an artifact "
                    "writer",
                )


SHARDS_MODULE = "src/repro/server/shards.py"
SHARD_IO_HELPERS = {"_read_shard", "_write_shard", "_migrate_single_file"}
"""The only functions allowed to open shard files: their callers hold
the per-shard flock (or, for migration, the global open lock)."""


class FlockShardIoRule(FileRule):
    """REP006: shard files are opened only by the flock helpers."""

    rule_id = "REP006"
    title = "cache shards opened outside server/shards.py lock helpers"
    hint = (
        "go through ShardedDiskTier (get/store) — raw opens bypass "
        "the flock and atomic-replace protocol"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, enclosing in _calls_with_enclosing_function(ctx.tree):
            func = node.func
            is_open = (
                isinstance(func, ast.Name) and func.id == "open"
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr == "open"
                and isinstance(func.value, ast.Name)
                and func.value.id in ("os", "io", "Path")
            )
            if not is_open or not node.args:
                continue
            try:
                target_text = ast.unparse(node.args[0])
            except Exception:  # pragma: no cover - unparse is total on 3.9+
                continue
            if "shard" not in target_text.lower():
                continue
            if (
                ctx.relpath == SHARDS_MODULE
                and enclosing in SHARD_IO_HELPERS
            ):
                continue
            yield self.finding(
                ctx,
                node,
                f"shard file opened directly ({target_text!r}) outside "
                f"the flock helpers in server/shards.py",
            )


STORE_FILE_MARKERS = (
    "shard",
    "gc-journal",
    "gc_journal",
    "journal_path",
    "cache-index",
    "cache_index",
    "index_path",
    "store-config",
    "store_config",
    "config_path",
)
"""Path-expression fragments identifying cache-store files.  Textual on
purpose (same heuristic as REP006): the store's filenames and path
helpers are all named after what they hold, so the unparsed argument
text is a reliable signal without data-flow analysis."""

STORE_WRITE_ALLOWLIST = {
    "src/repro/server/shards.py": {
        "_write_shard",
        "_write_index",
        "_persist_limits",
        "_quarantine_entry",
    },
    "src/repro/server/store_gc.py": {"_write_journal"},
}
"""The only (module, function) pairs allowed to write store files.
Each helper holds the appropriate lock and writes atomically; the
crash-recovery matrix in docs/cache-lifecycle.md is proved against
exactly these write sites."""


class StoreArtifactWriteRule(FileRule):
    """REP009: cache-store files written only by the locked helpers."""

    rule_id = "REP009"
    title = "cache-store file written outside the locked atomic helpers"
    hint = (
        "go through ShardedDiskTier / store_gc — journal, index, and "
        "store-config writes must stay inside the allowlisted helpers "
        "or crash recovery can no longer trust them"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed = STORE_WRITE_ALLOWLIST.get(ctx.relpath, set())
        for node, enclosing in _calls_with_enclosing_function(ctx.tree):
            target_text = _store_write_target(node)
            if target_text is None:
                continue
            lowered = target_text.lower()
            if not any(m in lowered for m in STORE_FILE_MARKERS):
                continue
            if enclosing in allowed:
                continue
            yield self.finding(
                ctx,
                node,
                f"cache-store file written directly ({target_text!r}) "
                f"outside the locked atomic helpers",
            )


def _store_write_target(node: ast.Call):
    """The unparsed path argument of a store-file *write*, or None.

    Recognized write shapes: ``atomic_write_json(path, ...)``, an
    ``open(path, mode)`` with a writable mode, and
    ``<path>.write_text(...)`` / ``<path>.write_bytes(...)``.
    """
    func = node.func
    if (
        isinstance(func, ast.Name) and func.id == "atomic_write_json"
    ) or (
        isinstance(func, ast.Attribute)
        and func.attr == "atomic_write_json"
    ):
        if node.args:
            return _unparse(node.args[0])
        return None
    if isinstance(func, ast.Attribute) and func.attr in (
        "write_text",
        "write_bytes",
    ):
        return _unparse(func.value)
    is_open = (isinstance(func, ast.Name) and func.id == "open") or (
        isinstance(func, ast.Attribute)
        and func.attr == "open"
        and isinstance(func.value, ast.Name)
        and func.value.id in ("os", "io", "Path")
    )
    if is_open and node.args:
        mode = None
        if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = kw.value.value
        if isinstance(mode, str) and any(c in mode for c in "wax+"):
            return _unparse(node.args[0])
    return None


def _unparse(node: ast.AST):
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return None


def _calls_with_enclosing_function(tree: ast.AST):
    """Yield ``(Call, enclosing_function_name_or_None)`` pairs."""
    results = []

    def walk(node: ast.AST, enclosing: object) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                walk(child, child.name)
            else:
                if isinstance(child, ast.Call):
                    results.append((child, enclosing))
                walk(child, enclosing)

    walk(tree, None)
    return results
