"""REP007/REP008 — failure-semantics rules.

``docs/failure-semantics.md`` promises that every failure class is
either recovered *loudly* (a structured event, a counted stat) or
propagated — never silently eaten.  REP007 catches the eating; REP008
keeps the fault-injection harness honest by requiring every seam
registered in :mod:`repro.service.faults` to be exercised by at least
one chaos test, so a seam cannot rot into dead code that claims
coverage it no longer has.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Set, Tuple

from repro.analysis.engine import (
    FileContext,
    FileRule,
    Project,
    ProjectRule,
)
from repro.analysis.findings import Finding

RECOVERY_SCOPE = ("src/repro/server/", "src/repro/service/")

_BROAD = {"Exception", "BaseException"}


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True  # bare except:
    if isinstance(kind, ast.Name):
        return kind.id in _BROAD
    if isinstance(kind, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD
            for el in kind.elts
        )
    return False


def _is_silent_body(body: List[ast.stmt]) -> bool:
    return all(
        isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in body
    )


class NoSilentExceptRule(FileRule):
    """REP007: no silent broad exception swallowing in recovery paths."""

    rule_id = "REP007"
    title = "silent except in recovery paths"
    hint = (
        "narrow the exception type, or log/count/report before "
        "swallowing (see docs/failure-semantics.md)"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(RECOVERY_SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad_handler(node) and _is_silent_body(node.body):
                label = (
                    "bare except:"
                    if node.type is None
                    else "broad except"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{label} swallows every error with no log, "
                    f"counter, or event",
                )


FAULTS_MODULE = "src/repro/service/faults.py"
CHAOS_DIR = "tests/chaos"


def _fault_plan_fields(tree: ast.AST) -> List[Tuple[str, int]]:
    """``(field_name, line)`` for every FaultPlan dataclass field."""
    fields: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "FaultPlan":
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append((stmt.target.id, stmt.lineno))
    return fields


def _delay_sites(project: Project) -> List[Tuple[str, FileContext, ast.Call]]:
    """Every string literal named as a ``faults.delay("<site>")`` site."""
    sites: List[Tuple[str, FileContext, ast.Call]] = []
    for ctx in project.contexts:
        if not ctx.relpath.startswith("src/repro/"):
            continue
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            named_delay = (
                isinstance(func, ast.Attribute) and func.attr == "delay"
            ) or (isinstance(func, ast.Name) and func.id == "delay")
            if not named_delay:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(
                arg.value, str
            ):
                sites.append((arg.value, ctx, node))
    return sites


class FaultSeamCoverageRule(ProjectRule):
    """REP008: every registered fault seam has a chaos test."""

    rule_id = "REP008"
    title = "fault seams without chaos-test coverage"
    hint = (
        "add a tests/chaos/ test injecting this seam via "
        "faults.FaultPlan, or delete the seam"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        faults_ctx = project.get(FAULTS_MODULE)
        if faults_ctx is None:
            # Partial scan (explicit paths) — the invariant needs the
            # fault registry in view, so there is nothing to check.
            return
        chaos_root = project.root / CHAOS_DIR
        chaos_files = (
            sorted(chaos_root.glob("*.py")) if chaos_root.is_dir() else []
        )
        if not chaos_files:
            yield self.finding(
                faults_ctx,
                faults_ctx.tree,
                f"fault seams are registered but {CHAOS_DIR}/ has no "
                f"tests at all",
            )
            return
        chaos_text = "\n".join(
            path.read_text(encoding="utf-8") for path in chaos_files
        )
        covered: Set[str] = set()
        for name, line in _fault_plan_fields(faults_ctx.tree):
            if name in chaos_text:
                covered.add(name)
                continue
            anchor = ast.Constant(value=None)
            anchor.lineno, anchor.col_offset = line, 0
            yield self.finding(
                faults_ctx,
                anchor,
                f"fault seam {name!r} is registered in FaultPlan but "
                f"never referenced by any {CHAOS_DIR}/ test",
            )
        for site, ctx, node in _delay_sites(project):
            if site in chaos_text:
                continue
            yield self.finding(
                ctx,
                node,
                f"delay seam site {site!r} is injected here but never "
                f"named by any {CHAOS_DIR}/ test",
            )
