"""REP003 — no blocking calls inside ``async def`` in the server layer.

One blocking call inside a coroutine stalls the whole event loop: every
connected client's stream freezes, heartbeats miss, and the admission
controller's latency estimates poison themselves.  Blocking work
belongs behind ``loop.run_in_executor`` (which is why a *nested
synchronous* ``def`` inside a coroutine is exempt — that is exactly the
shape executor thunks take).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.engine import FileContext, FileRule
from repro.analysis.findings import Finding

ASYNC_SCOPE = ("src/repro/server/",)

_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep() blocks the event loop",
    ("os", "system"): "os.system() blocks the event loop",
    ("socket", "socket"): "raw synchronous socket in a coroutine",
    ("socket", "create_connection"): (
        "synchronous socket.create_connection in a coroutine"
    ),
    ("socket", "getaddrinfo"): (
        "synchronous DNS resolution in a coroutine"
    ),
}
_BLOCKING_MODULES = {
    "subprocess": "synchronous subprocess call in a coroutine",
    "fcntl": "fcntl file locking blocks the event loop",
}
_BLOCKING_NAMES = {
    "locked_file": "locked_file() takes a blocking flock",
}


class NoBlockingInAsyncRule(FileRule):
    """REP003: coroutines in ``server/`` must not block."""

    rule_id = "REP003"
    title = "no blocking calls inside async def in server/"
    hint = (
        "await the asyncio equivalent, or push the call into an "
        "executor via loop.run_in_executor"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(ASYNC_SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        self._visit(ctx, ctx.tree, in_async=False, findings=findings)
        return iter(findings)

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        *,
        in_async: bool,
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                self._visit(ctx, child, in_async=True, findings=findings)
            elif isinstance(child, (ast.FunctionDef, ast.Lambda)):
                # A sync def nested in a coroutine runs off-loop (it is
                # the executor-thunk idiom); its body is a sync context.
                self._visit(ctx, child, in_async=False, findings=findings)
            else:
                if in_async and isinstance(child, ast.Call):
                    message = self._blocking_reason(child.func)
                    if message is not None:
                        findings.append(
                            self.finding(ctx, child, message)
                        )
                self._visit(
                    ctx, child, in_async=in_async, findings=findings
                )

    @staticmethod
    def _blocking_reason(func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name):
            return _BLOCKING_NAMES.get(func.id)
        if not isinstance(func, ast.Attribute):
            return None
        if isinstance(func.value, ast.Name):
            module = func.value.id
            specific = _BLOCKING_MODULE_CALLS.get((module, func.attr))
            if specific is not None:
                return specific
            broad = _BLOCKING_MODULES.get(module)
            if broad is not None:
                return f"{broad} ({module}.{func.attr})"
        return _BLOCKING_NAMES.get(func.attr)
