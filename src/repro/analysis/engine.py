"""Visitor-driven AST rule engine behind ``python -m repro lint``.

The engine owns everything rule-agnostic: collecting files, parsing
them once, dispatching :class:`FileRule` / :class:`ProjectRule`
instances, applying suppression comments, and folding the results into
a :class:`Report`.  Rules are small classes that yield
:class:`~repro.analysis.findings.Finding` records; a rule that raises
is an *internal* failure and surfaces as
:class:`~repro.core.exceptions.AnalysisError` (CLI exit 2), never as a
finding (exit 1) — the gate must not confuse "the code is wrong" with
"the linter is broken".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.exceptions import AnalysisError
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.suppress import Suppressions, parse_suppressions

DEFAULT_SCAN_ROOTS = ("src/repro", "benchmarks", "examples")
"""Repo-relative directories the repo gate lints (tests are exercised
by pytest itself; fixture modules there *deliberately* violate rules)."""

PARSE_RULE_ID = "REP000"
"""Pseudo-rule reporting files the engine cannot parse at all."""


@dataclass
class FileContext:
    """One parsed source file handed to every applicable rule."""

    path: Path
    relpath: str
    source: str
    lines: Sequence[str]
    tree: ast.AST
    suppressions: Suppressions

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


@dataclass
class Project:
    """Whole-scan view for cross-file rules."""

    root: Path
    contexts: List[FileContext]

    def get(self, relpath: str) -> Optional[FileContext]:
        for ctx in self.contexts:
            if ctx.relpath == relpath:
                return ctx
        return None


class Rule:
    """Base class: identity + the finding constructor helper."""

    rule_id: str = "REPXXX"
    title: str = ""
    hint: str = ""

    def applies_to(self, relpath: str) -> bool:
        return True

    def finding(
        self,
        ctx: FileContext,
        node: Any,
        message: str,
        *,
        hint: Optional[str] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 0) or 0
        col = getattr(node, "col_offset", 0) or 0
        return Finding(
            rule_id=self.rule_id,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
            hint=self.hint if hint is None else hint,
            line_text=ctx.line_text(line),
        )


class FileRule(Rule):
    """A rule checked independently against each file."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule needing the whole scan (cross-file invariants)."""

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: List[Finding]
    suppressed: List[Finding]
    files_scanned: int
    root: Path
    rule_ids: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": len(self.suppressed),
            "files_scanned": self.files_scanned,
            "rules": self.rule_ids,
        }


def _collect_files(root: Path, paths: Sequence[str]) -> List[Path]:
    """Every ``*.py`` under the requested paths, sorted for determinism."""
    found: List[Path] = []
    for entry in paths:
        target = Path(entry)
        if not target.is_absolute():
            target = root / target
        if target.is_dir():
            found.extend(
                p for p in target.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        elif target.is_file():
            found.append(target)
        # Missing default roots are skipped (a partial checkout is not
        # an analyzer crash); explicitly-passed paths are validated by
        # the CLI before we get here.
    unique = sorted({p.resolve() for p in found})
    return unique


class Analyzer:
    """Parse once, run every rule, fold findings into a :class:`Report`."""

    def __init__(
        self,
        root: Path,
        *,
        rules: Optional[Sequence[Rule]] = None,
        paths: Optional[Sequence[str]] = None,
    ) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.root = Path(root).resolve()
        self.rules = list(rules)
        self.paths = list(paths) if paths else list(DEFAULT_SCAN_ROOTS)

    # ------------------------------------------------------------------
    def _relpath(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def _parse(self, path: Path) -> tuple:
        """``(context, parse_finding)`` — exactly one of the two is None."""
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        relpath = self._relpath(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            line = exc.lineno or 0
            lines = source.splitlines()
            text = lines[line - 1].strip() if 0 < line <= len(lines) else ""
            return None, Finding(
                rule_id=PARSE_RULE_ID,
                path=relpath,
                line=line,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; unparsable files are invisible "
                "to every other rule",
                line_text=text,
            )
        context = FileContext(
            path=path,
            relpath=relpath,
            source=source,
            lines=source.splitlines(),
            tree=tree,
            suppressions=parse_suppressions(source),
        )
        return context, None

    def _run_rule(
        self, rule: Rule, subject: str, invoke
    ) -> List[Finding]:
        try:
            return list(invoke())
        except AnalysisError:
            raise
        except Exception as exc:
            raise AnalysisError(
                f"rule {rule.rule_id} crashed on {subject}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def run(self) -> Report:
        files = _collect_files(self.root, self.paths)
        contexts: List[FileContext] = []
        raw: List[Finding] = []
        for path in files:
            context, parse_finding = self._parse(path)
            if parse_finding is not None:
                raw.append(parse_finding)
                continue
            contexts.append(context)

        file_rules = [r for r in self.rules if isinstance(r, FileRule)]
        project_rules = [
            r for r in self.rules if isinstance(r, ProjectRule)
        ]
        for ctx in contexts:
            for rule in file_rules:
                if rule.applies_to(ctx.relpath):
                    raw.extend(
                        self._run_rule(
                            rule, ctx.relpath, lambda: rule.check(ctx)
                        )
                    )
        project = Project(root=self.root, contexts=contexts)
        for rule in project_rules:
            raw.extend(
                self._run_rule(
                    rule,
                    "<project>",
                    lambda: rule.check_project(project),
                )
            )

        by_path = {ctx.relpath: ctx.suppressions for ctx in contexts}
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in raw:
            state = by_path.get(finding.path)
            if state is not None and state.allows(
                finding.rule_id, finding.line
            ):
                suppressed.append(finding)
            else:
                kept.append(finding)
        return Report(
            findings=sort_findings(kept),
            suppressed=sort_findings(suppressed),
            files_scanned=len(files),
            root=self.root,
            rule_ids=[rule.rule_id for rule in self.rules],
        )
