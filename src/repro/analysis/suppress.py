"""Suppression-comment parsing for the lint engine.

Two directives, both living in ordinary ``#`` comments:

* ``# repro-lint: disable=REP001,REP002 <optional reason>`` — suppress
  those rules on the directive's own line; when the comment is the only
  thing on its line, it suppresses the **next** line instead (so a
  directive can sit above a long statement).
* ``# repro-lint: disable-file=REP002 <optional reason>`` — suppress
  those rules for the whole file, from anywhere in it.

``*`` suppresses every rule.  Comments are located with :mod:`tokenize`
so a ``#`` inside a string literal can never be misread as a directive;
files that fail tokenization (the parse-error rule reports those) fall
back to a line-wise scan.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

DIRECTIVE_RE = re.compile(
    r"repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>\*|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass
class Suppressions:
    """Parsed suppression state for one file."""

    file_level: Set[str] = field(default_factory=set)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def allows(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is suppressed at ``line``."""
        if "*" in self.file_level or rule_id in self.file_level:
            return True
        rules = self.by_line.get(line)
        return rules is not None and ("*" in rules or rule_id in rules)

    def __bool__(self) -> bool:
        return bool(self.file_level or self.by_line)


def _iter_comments(source: str) -> List[Tuple[int, int, str, str]]:
    """``(line, col, comment_text, line_prefix)`` for every comment."""
    comments: List[Tuple[int, int, str, str]] = []
    lines = source.splitlines()
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable file: REP000 reports it; still honor directives on
        # well-formed lines via a naive scan (strings may false-match,
        # which only ever *over*-suppresses a broken file).
        for index, text in enumerate(lines, start=1):
            marker = text.find("#")
            if marker >= 0:
                comments.append(
                    (index, marker, text[marker:], text[:marker])
                )
        return comments
    for token in tokens:
        if token.type == tokenize.COMMENT:
            row, col = token.start
            prefix = lines[row - 1][:col] if row - 1 < len(lines) else ""
            comments.append((row, col, token.string, prefix))
    return comments


def parse_suppressions(source: str) -> Suppressions:
    """Extract both directive kinds from ``source``."""
    state = Suppressions()
    for line, _col, text, prefix in _iter_comments(source):
        match = DIRECTIVE_RE.search(text)
        if match is None:
            continue
        rules = {
            rule.strip() for rule in match.group("rules").split(",")
        } - {""}
        if match.group("kind") == "disable-file":
            state.file_level.update(rules)
            continue
        target = line
        if not prefix.strip():
            # Comment-only line: the directive guards the next line.
            target = line + 1
        state.by_line.setdefault(target, set()).update(rules)
        # A trailing directive also covers its own line even when the
        # statement it annotates spans onto it.
        if target != line:
            state.by_line.setdefault(line, set()).update(rules)
    return state
