"""Multi-tenant traffic policy for the solve fronts.

The daemon and the TCP gateway multiplex many clients onto one shared
:class:`repro.server.engine.AsyncSolveEngine`; this module is the
policy layer that keeps them from starving each other:

* :class:`TenantConfig` / :class:`TenantRegistry` — per-tenant identity
  (name + optional shared key), a priority class, an in-flight cap, and
  a rolling compute quota built on
  :class:`repro.service.budget.QuotaWindow`;
* :class:`AdmissionController` — a priority-aware admission window in
  front of the engine: at most ``max_in_flight`` requests solve at
  once, at most ``max_waiting`` wait behind them, and everything beyond
  that is rejected *immediately* with a structured ``retry_after``
  estimate instead of queueing unboundedly;
* :class:`ServerMetrics` — the shared counters both fronts report
  through their ``stats``/``metrics`` ops (connection gauge + lifetime
  counter, requests, rejections, per-tenant usage).

Rejections raise :class:`RequestRejected`, whose :meth:`~RequestRejected
.as_event` is the wire form::

    {"event": "error", "code": "saturated", "retry_after": 1.25,
     "error": "..."}

Everything here is event-loop confined (no locks): both fronts call it
only from their serving loop.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, Iterable, Optional, Union

from repro.core.exceptions import SolverError
from repro.service.budget import QuotaWindow

DEFAULT_TENANT = "anonymous"
"""Tenant identity assumed for requests that present none."""

REJECT_SATURATED = "saturated"
REJECT_QUOTA = "quota_exhausted"
REJECT_TENANT_SATURATED = "tenant_saturated"
REJECT_DENIED = "denied"
REJECT_UNKNOWN_TENANT = "unknown_tenant"

HEALTH_READY = "ready"
HEALTH_DEGRADED = "degraded"
HEALTH_DRAINING = "draining"
HEALTH_STATES = (HEALTH_READY, HEALTH_DEGRADED, HEALTH_DRAINING)
"""The ``health`` op's status values, in decreasing order of welcome."""


class RequestRejected(SolverError):
    """A request the policy layer refused to queue.

    Carries the machine-readable rejection ``code`` and, where the
    refusal is transient (saturation, quota), a ``retry_after`` hint in
    seconds — clients back off instead of hammering the front.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = REJECT_SATURATED,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after

    def as_event(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "event": "error",
            "error": str(self),
            "code": self.code,
        }
        if self.retry_after is not None:
            payload["retry_after"] = round(self.retry_after, 3)
        return payload


# ----------------------------------------------------------------------
# Tenants
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantConfig:
    """One tenant's standing policy.

    ``priority`` is a class, not a weight: lower numbers are served
    sooner when the admission window is contended (requests may ask for
    a *worse* priority than their tenant's, never a better one).
    ``quota_seconds`` caps solver wall-clock the tenant may consume per
    ``quota_window_seconds`` of real time; ``max_in_flight`` caps the
    tenant's concurrent requests regardless of global headroom.  ``key``
    is an optional shared secret the request must echo.
    """

    name: str
    priority: int = 10
    quota_seconds: Optional[float] = None
    quota_window_seconds: float = 60.0
    max_in_flight: Optional[int] = None
    key: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SolverError("tenant name must be non-empty")
        if self.quota_window_seconds <= 0:
            raise SolverError(
                f"tenant {self.name!r}: quota_window_seconds must be > 0"
            )
        if self.quota_seconds is not None and self.quota_seconds < 0:
            raise SolverError(
                f"tenant {self.name!r}: quota_seconds must be >= 0"
            )
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise SolverError(
                f"tenant {self.name!r}: max_in_flight must be >= 1"
            )

    @classmethod
    def from_dict(
        cls, name: str, payload: Dict[str, Any]
    ) -> "TenantConfig":
        if not isinstance(payload, dict):
            raise SolverError(
                f"tenant {name!r} config must be an object, got {payload!r}"
            )
        known = {
            "priority",
            "quota_seconds",
            "quota_window_seconds",
            "max_in_flight",
            "key",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SolverError(
                f"tenant {name!r} config has unknown keys {unknown} "
                f"(known: {sorted(known)})"
            )
        return cls(name=name, **payload)


class TenantState:
    """A tenant's live accounting: quota window, gauge, usage counters."""

    def __init__(
        self,
        config: TenantConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.quota = QuotaWindow(
            config.quota_seconds,
            window_seconds=config.quota_window_seconds,
            clock=clock,
        )
        self.in_flight = 0
        self.requests = 0
        self.rejected = 0
        self.cases = 0
        self.cases_completed = 0
        self.cache_hits = 0

    def charge(self, label: str, seconds: float) -> None:
        self.quota.charge(label, seconds)

    def usage(self) -> Dict[str, Any]:
        return {
            "priority": self.config.priority,
            "in_flight": self.in_flight,
            "requests": self.requests,
            "rejected": self.rejected,
            "cases": self.cases,
            "cases_completed": self.cases_completed,
            "cache_hits": self.cache_hits,
            "quota": self.quota.as_dict(),
        }


class TenantRegistry:
    """Resolve request identities to live tenant state.

    Unknown tenants either materialize lazily under ``default`` policy
    (``allow_unknown=True``, the daemon's open-door default) or are
    rejected outright (the locked-down gateway deployment).
    """

    def __init__(
        self,
        configs: Iterable[TenantConfig] = (),
        *,
        allow_unknown: bool = True,
        default: Optional[TenantConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.allow_unknown = allow_unknown
        self.default = default or TenantConfig(DEFAULT_TENANT)
        self._clock = clock
        self._states: Dict[str, TenantState] = {}
        for config in configs:
            if config.name in self._states:
                raise SolverError(f"duplicate tenant {config.name!r}")
            self._states[config.name] = TenantState(config, clock=clock)

    def resolve(
        self, name: Optional[str], key: Optional[str] = None
    ) -> TenantState:
        """The state for one request's identity; raises on policy refusal."""
        tenant = self.default.name if name is None else str(name)
        state = self._states.get(tenant)
        if state is None:
            if not self.allow_unknown:
                raise RequestRejected(
                    f"unknown tenant {tenant!r} (registry is closed; "
                    "configure the tenant or enable allow_unknown)",
                    code=REJECT_UNKNOWN_TENANT,
                )
            config = TenantConfig(
                name=tenant,
                priority=self.default.priority,
                quota_seconds=self.default.quota_seconds,
                quota_window_seconds=self.default.quota_window_seconds,
                max_in_flight=self.default.max_in_flight,
            )
            state = TenantState(config, clock=self._clock)
            self._states[tenant] = state
        if state.config.key is not None and key != state.config.key:
            raise RequestRejected(
                f"tenant {tenant!r}: bad or missing key",
                code=REJECT_DENIED,
            )
        return state

    def states(self) -> Dict[str, TenantState]:
        return dict(self._states)

    def usage(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: state.usage()
            for name, state in sorted(self._states.items())
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, payload: Dict[str, Any]) -> "TenantRegistry":
        """Build from the tenancy config shape the CLI loads from JSON::

            {"allow_unknown": false,
             "default": {"priority": 10},
             "tenants": {
                 "acme":  {"priority": 1, "quota_seconds": 30,
                           "quota_window_seconds": 60, "key": "s3cret"},
                 "guest": {"priority": 20, "max_in_flight": 1}}}
        """
        if not isinstance(payload, dict):
            raise SolverError(
                f"tenancy config must be an object, got {payload!r}"
            )
        default = None
        if payload.get("default") is not None:
            default = TenantConfig.from_dict(
                DEFAULT_TENANT, payload["default"]
            )
        tenants = payload.get("tenants", {})
        if not isinstance(tenants, dict):
            raise SolverError("'tenants' must map names to configs")
        configs = [
            TenantConfig.from_dict(str(name), config)
            for name, config in tenants.items()
        ]
        return cls(
            configs,
            allow_unknown=bool(payload.get("allow_unknown", True)),
            default=default,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TenantRegistry":
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except OSError as exc:
            raise SolverError(f"cannot read tenancy config {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise SolverError(f"bad JSON in tenancy config {path}: {exc}")
        return cls.from_mapping(payload)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class AdmissionController:
    """Bounded, priority-aware admission window with reject-not-queue.

    ``max_in_flight`` requests hold solve slots; up to ``max_waiting``
    more wait in a priority heap (priority class first, then arrival
    order — no starvation within a class).  Anything beyond the heap is
    rejected with a ``retry_after`` derived from an EWMA of observed
    request service time and the current backlog, so clients back off
    proportionally to real load.

    A released slot is handed directly to the best waiter (the slot
    never returns to the pool in between), so a late arrival can never
    jump the queue past a better-priority waiter.
    """

    def __init__(
        self,
        *,
        max_in_flight: int = 4,
        max_waiting: int = 16,
    ) -> None:
        if max_in_flight < 1:
            raise SolverError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if max_waiting < 0:
            raise SolverError(
                f"max_waiting must be >= 0, got {max_waiting}"
            )
        self.max_in_flight = max_in_flight
        self.max_waiting = max_waiting
        self._active = 0
        self._waiters: list = []  # heap of (priority, seq, future)
        self._seq = itertools.count()
        self._service_ewma: Optional[float] = None
        self.admitted_total = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------
    def _live_waiters(self) -> int:
        return sum(1 for _, _, fut in self._waiters if not fut.done())

    def estimated_retry_after(self) -> float:
        """Back-off hint: backlog drained at the observed service rate."""
        per_request = self._service_ewma or 1.0
        backlog = self._active + self._live_waiters() + 1
        return max(0.1, per_request * backlog / self.max_in_flight)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "active": self._active,
            "waiting": self._live_waiters(),
            "depth": self._active + self._live_waiters(),
            "max_in_flight": self.max_in_flight,
            "max_waiting": self.max_waiting,
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "service_seconds_ewma": self._service_ewma,
        }

    # ------------------------------------------------------------------
    async def admit(self, tenant: TenantState, priority: int) -> None:
        """Take one slot for ``tenant`` or raise :class:`RequestRejected`.

        Per-tenant checks (quota window, tenant in-flight cap) refuse
        immediately; global saturation either parks the request in the
        priority heap or, when the heap is full, rejects with a
        ``retry_after``.  Callers must pair every successful ``admit``
        with exactly one :meth:`release`.
        """
        if tenant.quota.exhausted():
            self.rejected_total += 1
            tenant.rejected += 1
            raise RequestRejected(
                f"tenant {tenant.config.name!r} exhausted its "
                f"{tenant.quota.quota_seconds:g}s/"
                f"{tenant.quota.window_seconds:g}s compute quota",
                code=REJECT_QUOTA,
                retry_after=tenant.quota.retry_after(),
            )
        cap = tenant.config.max_in_flight
        if cap is not None and tenant.in_flight >= cap:
            self.rejected_total += 1
            tenant.rejected += 1
            raise RequestRejected(
                f"tenant {tenant.config.name!r} already has "
                f"{tenant.in_flight} request(s) in flight (cap {cap})",
                code=REJECT_TENANT_SATURATED,
                retry_after=self.estimated_retry_after(),
            )
        if self._active >= self.max_in_flight:
            if self._live_waiters() >= self.max_waiting:
                self.rejected_total += 1
                tenant.rejected += 1
                raise RequestRejected(
                    f"server saturated: {self._active} in flight, "
                    f"{self._live_waiters()} waiting (caps "
                    f"{self.max_in_flight}/{self.max_waiting})",
                    code=REJECT_SATURATED,
                    retry_after=self.estimated_retry_after(),
                )
            future: asyncio.Future = (
                asyncio.get_running_loop().create_future()
            )
            heapq.heappush(
                self._waiters, (priority, next(self._seq), future)
            )
            # Cancellation (client gone while queued) leaves the future
            # in the heap; release() skips done/cancelled entries.
            await future
        else:
            self._active += 1
        tenant.in_flight += 1
        self.admitted_total += 1

    def release(
        self, tenant: TenantState, service_seconds: float
    ) -> None:
        tenant.in_flight = max(0, tenant.in_flight - 1)
        if self._service_ewma is None:
            self._service_ewma = service_seconds
        else:
            self._service_ewma += 0.2 * (
                service_seconds - self._service_ewma
            )
        # Hand the freed slot straight to the best live waiter.
        while self._waiters:
            _, _, future = heapq.heappop(self._waiters)
            if not future.done():
                future.set_result(None)
                return
        self._active = max(0, self._active - 1)


# ----------------------------------------------------------------------
# Degraded mode
# ----------------------------------------------------------------------
class DegradedModeController:
    """Decide when to serve best-effort instead of rejecting.

    Two signals say the exact backends can't keep up: a burst of
    admission rejections (the window is saturated faster than clients
    back off) and a run of exact-backend budget timeouts (instances too
    hard for their budgets — more rejected traffic is coming).  When
    either signal crosses its threshold within ``window_seconds``, the
    front flips to *degraded*: saturated requests are answered with
    heuristic-only solves flagged ``degraded=true`` rather than turned
    away — a worse depth bound now beats a perfect answer never.

    Hysteresis: once entered, degraded mode persists for
    ``cooldown_seconds`` after the *last* triggering signal, so the
    mode doesn't flap on every pruned window.  Event-loop confined
    like everything else in this module (no locks).
    """

    def __init__(
        self,
        *,
        saturation_threshold: int = 5,
        exact_timeout_threshold: int = 3,
        window_seconds: float = 30.0,
        cooldown_seconds: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if saturation_threshold < 1:
            raise SolverError(
                f"saturation_threshold must be >= 1, "
                f"got {saturation_threshold}"
            )
        if exact_timeout_threshold < 1:
            raise SolverError(
                f"exact_timeout_threshold must be >= 1, "
                f"got {exact_timeout_threshold}"
            )
        if window_seconds <= 0 or cooldown_seconds < 0:
            raise SolverError(
                "window_seconds must be > 0 and cooldown_seconds >= 0"
            )
        self.saturation_threshold = saturation_threshold
        self.exact_timeout_threshold = exact_timeout_threshold
        self.window_seconds = window_seconds
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._saturations: Deque[float] = deque()
        self._exact_timeouts: Deque[float] = deque()
        self._degraded_since: Optional[float] = None
        self._last_signal: Optional[float] = None
        self.entered_total = 0
        self.served_degraded = 0

    # ------------------------------------------------------------------
    def _prune(self, now: float) -> None:
        for window in (self._saturations, self._exact_timeouts):
            while window and now - window[0] > self.window_seconds:
                window.popleft()

    def _over_threshold(self) -> bool:
        return (
            len(self._saturations) >= self.saturation_threshold
            or len(self._exact_timeouts) >= self.exact_timeout_threshold
        )

    def _note(self, window: Deque[float]) -> None:
        now = self._clock()
        window.append(now)
        self._prune(now)
        if self._over_threshold():
            if self._degraded_since is None:
                self._degraded_since = now
                self.entered_total += 1
            self._last_signal = now

    def note_saturation(self) -> None:
        """An admission rejection for load (not policy) just happened."""
        self._note(self._saturations)

    def note_exact_timeout(self) -> None:
        """A solve came back with an exact backend out of budget."""
        self._note(self._exact_timeouts)

    # ------------------------------------------------------------------
    def degraded(self) -> bool:
        if self._degraded_since is None:
            return False
        now = self._clock()
        self._prune(now)
        if self._over_threshold():
            return True
        if (
            self._last_signal is not None
            and now - self._last_signal <= self.cooldown_seconds
        ):
            return True
        self._degraded_since = None
        self._last_signal = None
        return False

    def snapshot(self) -> Dict[str, Any]:
        now = self._clock()
        self._prune(now)
        degraded = self.degraded()
        return {
            "degraded": degraded,
            "degraded_for_seconds": (
                round(now - self._degraded_since, 3)
                if degraded and self._degraded_since is not None
                else None
            ),
            "recent_saturations": len(self._saturations),
            "recent_exact_timeouts": len(self._exact_timeouts),
            "saturation_threshold": self.saturation_threshold,
            "exact_timeout_threshold": self.exact_timeout_threshold,
            "window_seconds": self.window_seconds,
            "cooldown_seconds": self.cooldown_seconds,
            "entered_total": self.entered_total,
            "served_degraded": self.served_degraded,
        }


# ----------------------------------------------------------------------
# Shared metrics surface
# ----------------------------------------------------------------------
@dataclass
class ServerMetrics:
    """Counters both fronts feed and report (one stats surface).

    ``connections_active`` is a gauge (incremented on accept,
    decremented in the handler's ``finally``); ``connections_total`` is
    the lifetime counter — the split the old daemon's single
    ever-growing ``connections`` field conflated.
    """

    connections_active: int = 0
    connections_total: int = 0
    requests_total: int = 0
    rejected_total: int = 0
    cases_submitted: int = 0
    cases_completed: int = 0
    cases_failed: int = 0
    cases_cancelled: int = 0
    cases_from_cache: int = 0
    client_disconnects: int = 0
    degraded_total: int = 0
    worker_crash_events: int = 0
    started_at: float = field(default_factory=time.monotonic)

    def connection_opened(self) -> None:
        self.connections_active += 1
        self.connections_total += 1

    def connection_closed(self) -> None:
        self.connections_active = max(0, self.connections_active - 1)

    def record_terminal(self, kind: str, *, from_cache: bool) -> None:
        if kind == "done":
            self.cases_completed += 1
            if from_cache:
                self.cases_from_cache += 1
        elif kind == "failed":
            self.cases_failed += 1
        elif kind == "cancelled":
            self.cases_cancelled += 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "connections": {
                "active": self.connections_active,
                "total": self.connections_total,
                "disconnects": self.client_disconnects,
            },
            "requests": {
                "total": self.requests_total,
                "rejected": self.rejected_total,
                "degraded": self.degraded_total,
            },
            "worker_crash_events": self.worker_crash_events,
            "cases": {
                "submitted": self.cases_submitted,
                "completed": self.cases_completed,
                "failed": self.cases_failed,
                "cancelled": self.cases_cancelled,
                "from_cache": self.cases_from_cache,
            },
            "uptime_seconds": time.monotonic() - self.started_at,
        }
