"""Multi-tenant TCP gateway (and shared front) for the solve engine.

One engine, many remote clients.  :class:`StreamFront` is the
transport-agnostic half: it speaks the JSON-lines protocol over any
asyncio stream pair, validates requests *before* they reach the engine,
applies the tenancy policy of :mod:`repro.server.tenancy`, and feeds
one shared metrics surface.  :class:`SolveGateway` binds it to a TCP
``asyncio.start_server``; :class:`repro.server.daemon.SolveDaemon`
binds the same front to a unix socket, so both deployments expose
identical ops and identical counters.

Wire protocol (one JSON object per line; the request is the first line
of a connection)::

    {"op": "solve", "cases": [{"case_id": "a", "rows": ["110", "011"]}],
     "tenant": "acme", "key": "s3cret", "priority": 3,
     "members": ["trivial", "packing:8", "sap"], "seed": 7,
     "budget_per_instance": 10.0, "race": "concurrent"}

Solve responses stream one line per event (``queued`` / ``started`` /
``member_finished`` / ``done`` / ``cancelled`` / ``failed``) and close
with ``{"event": "batch_done", ...}``.  ``member_finished`` events
stream for *both* executors — the process pool forwards them over a
manager queue (see :mod:`repro.server.engine`).

Single-line ops: ``ping``, ``stats`` (engine + server counters),
``metrics`` (queue depth, connections, per-tenant usage, cache hit
rate, per-solver win rates), ``health`` (``ready`` / ``degraded`` /
``draining`` plus the degraded-mode evidence), ``cancel``,
``shutdown``.

Admission control rejects instead of queueing unboundedly: a saturated
window or an exhausted tenant quota answers::

    {"event": "error", "code": "saturated" | "quota_exhausted" | ...,
     "retry_after": 1.25, "error": "..."}

and closes the connection — clients should sleep ``retry_after``
seconds and resubmit.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Awaitable, Callable, Dict, Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ReproError, SolverError
from repro.server.engine import WORKER_CRASHED, AsyncSolveEngine
from repro.server.tenancy import (
    HEALTH_DEGRADED,
    HEALTH_DRAINING,
    HEALTH_READY,
    REJECT_SATURATED,
    REJECT_TENANT_SATURATED,
    AdmissionController,
    DegradedModeController,
    RequestRejected,
    ServerMetrics,
    TenantRegistry,
    TenantState,
)
from repro.service import faults
from repro.service.batch import BatchItem
from repro.service.portfolio import (
    RACE_MODES,
    PortfolioResult,
    is_exact_member,
    validate_members,
)

PROTOCOL_VERSION = 2
"""Bumped from 1 when tenancy, ``metrics``, and ``retry_after``
rejections landed; the solve-event stream itself is unchanged, so v1
clients interoperate."""

SOLVE_OVERRIDES = (
    "members",
    "seed",
    "budget_per_instance",
    "budget_per_member",
    "stop_when_optimal",
    "race",
)

Sender = Callable[[Dict[str, Any]], Awaitable[None]]


def parse_case(payload: Dict[str, Any], index: int) -> BatchItem:
    """One wire case -> :class:`BatchItem`.

    Accepts ``rows`` (list of '0'/'1' strings, the pattern-file format)
    or ``row_masks`` + ``num_cols`` (the compact form the cache and
    batch workers use).  A missing ``case_id`` is synthesized from the
    position.
    """
    if not isinstance(payload, dict):
        raise SolverError(f"case #{index} is not an object: {payload!r}")
    case_id = str(payload.get("case_id", f"case-{index:04d}"))
    if "rows" in payload:
        matrix = BinaryMatrix.from_strings(list(payload["rows"]))
    elif "row_masks" in payload and "num_cols" in payload:
        matrix = BinaryMatrix(
            [int(mask) for mask in payload["row_masks"]],
            int(payload["num_cols"]),
        )
    else:
        raise SolverError(
            f"case {case_id!r} needs 'rows' or 'row_masks'+'num_cols'"
        )
    members = payload.get("members")
    return BatchItem(
        case_id,
        matrix,
        None if members is None else tuple(str(m) for m in members),
    )


def validate_overrides(request: Dict[str, Any]) -> Dict[str, Any]:
    """Type-check the per-request engine overrides *before* solving.

    A string budget or an unknown race mode used to surface as a
    ``TypeError`` deep inside the engine after events had already
    streamed — the connection just died.  Checking the wire types here
    turns every malformed override into a clean ``error`` event.
    """
    overrides: Dict[str, Any] = {}
    for key in SOLVE_OVERRIDES:
        value = request.get(key)
        if value is None:
            continue
        if key == "members":
            if not isinstance(value, (list, tuple)) or not value:
                raise SolverError(
                    f"'members' must be a non-empty list, got {value!r}"
                )
            members = tuple(str(m) for m in value)
            validate_members(members)
            overrides[key] = members
        elif key == "seed":
            if isinstance(value, bool) or not isinstance(value, int):
                raise SolverError(f"'seed' must be an integer, got {value!r}")
            overrides[key] = value
        elif key in ("budget_per_instance", "budget_per_member"):
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise SolverError(
                    f"'{key}' must be a number of seconds, got {value!r}"
                )
            if value < 0:
                raise SolverError(f"'{key}' must be >= 0, got {value}")
            overrides[key] = float(value)
        elif key == "stop_when_optimal":
            if not isinstance(value, bool):
                raise SolverError(
                    f"'stop_when_optimal' must be a boolean, got {value!r}"
                )
            overrides[key] = value
        elif key == "race":
            if value not in RACE_MODES:
                raise SolverError(
                    f"'race' must be one of {RACE_MODES}, got {value!r}"
                )
            overrides[key] = value
    return overrides


def parse_priority(
    request: Dict[str, Any], tenant: TenantState
) -> int:
    """Effective priority class: the request may deprioritize itself
    below its tenant's configured class, never jump above it (lower
    number = served sooner)."""
    value = request.get("priority")
    if value is None:
        return tenant.config.priority
    if isinstance(value, bool) or not isinstance(value, int):
        raise SolverError(f"'priority' must be an integer, got {value!r}")
    return max(value, tenant.config.priority)


def heuristic_members(members: Any) -> tuple:
    """The best-effort member set a degraded front answers with."""
    kept = tuple(m for m in members if not is_exact_member(m))
    return kept or ("trivial",)


def exact_backend_timed_out(result: PortfolioResult) -> bool:
    """Did an exact member of this solve run out of its budget?"""
    for outcome in result.outcomes:
        if not is_exact_member(outcome.name):
            continue
        error = outcome.error or ""
        if "BudgetExceeded" in error or "budget exhausted" in error:
            return True
    return False


class StreamFront:
    """JSON-lines request handling shared by the daemon and the gateway."""

    def __init__(
        self,
        engine: AsyncSolveEngine,
        *,
        tenants: Optional[TenantRegistry] = None,
        admission: Optional[AdmissionController] = None,
        metrics: Optional[ServerMetrics] = None,
        degraded: Optional[DegradedModeController] = None,
    ) -> None:
        self.engine = engine
        self.tenants = tenants or TenantRegistry()
        self.admission = admission
        self.metrics = metrics or ServerMetrics()
        self.degraded = degraded or DegradedModeController()
        self._stop = asyncio.Event()

    def request_shutdown(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.connection_opened()
        sent = 0

        async def send(payload: Dict[str, Any]) -> None:
            nonlocal sent
            # Chaos seam: a FaultPlan can sever this connection after N
            # event lines, exercising client reconnect-and-resume.
            if faults.should_drop_connection(sent):
                raise ConnectionResetError(
                    "fault injection: dropping connection"
                )
            writer.write(json.dumps(payload).encode() + b"\n")
            sent += 1
            await writer.drain()

        try:
            line = await reader.readline()
            if not line.strip():
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                await send({"event": "error", "error": f"bad JSON: {exc}"})
                return
            if not isinstance(request, dict):
                await send(
                    {
                        "event": "error",
                        "error": f"request must be an object, "
                        f"got {type(request).__name__}",
                    }
                )
                return
            await self._dispatch(request, send, reader)
        except (ConnectionResetError, BrokenPipeError):
            # Client went away mid-stream; the solve generator's
            # cleanup cancels whatever work it alone was waiting on.
            self.metrics.client_disconnects += 1
        finally:
            self.metrics.connection_closed()
            # Half-close at the socket layer first: SHUT_WR delivers FIN
            # even if another process holds a duplicate of this fd, so
            # line-iterating clients always see end-of-stream.
            if writer.can_write_eof():
                try:
                    writer.write_eof()
                except OSError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def _dispatch(
        self,
        request: Dict[str, Any],
        send: Sender,
        reader: Optional[asyncio.StreamReader] = None,
    ) -> None:
        op = request.get("op")
        if op == "solve":
            await self._handle_solve(request, send, reader)
        elif op == "ping":
            await send(
                {
                    "event": "pong",
                    "version": PROTOCOL_VERSION,
                    "stats": self.engine.stats(),
                }
            )
        elif op == "stats":
            await send(
                {
                    "event": "stats",
                    "stats": self.engine.stats(),
                    "server": self.metrics.as_dict(),
                }
            )
        elif op == "metrics":
            await send({"event": "metrics", "metrics": self.metrics_dict()})
        elif op == "health":
            await send({"event": "health", **self.health_dict()})
        elif op == "cancel":
            case_id = str(request.get("case_id", ""))
            await send(
                {
                    "event": "cancel",
                    "case_id": case_id,
                    "cancelled": self.engine.cancel(case_id),
                }
            )
        elif op == "shutdown":
            await send({"event": "shutdown"})
            self.request_shutdown()
        else:
            await send({"event": "error", "error": f"unknown op {op!r}"})

    # ------------------------------------------------------------------
    def health_dict(self) -> Dict[str, Any]:
        """The ``health`` op's payload: one word, then the evidence.

        ``draining`` (shutdown requested, finish and go away) beats
        ``degraded`` (answers are best-effort) beats ``ready``.
        """
        if self._stop.is_set():
            status = HEALTH_DRAINING
        elif self.degraded.degraded():
            status = HEALTH_DEGRADED
        else:
            status = HEALTH_READY
        payload: Dict[str, Any] = {
            "status": status,
            "degraded_mode": self.degraded.snapshot(),
            "connections_active": self.metrics.connections_active,
        }
        if self.admission is not None:
            payload["queue"] = self.admission.snapshot()
        return payload

    def metrics_dict(self) -> Dict[str, Any]:
        """The one stats surface both fronts serve under ``metrics``."""
        engine_stats = self.engine.stats()
        payload = self.metrics.as_dict()
        payload["queue"] = (
            self.admission.snapshot()
            if self.admission is not None
            else {
                "active": engine_stats["active"],
                "waiting": 0,
                "depth": engine_stats["active"],
                "max_in_flight": None,
                "max_waiting": None,
            }
        )
        payload["engine"] = engine_stats
        payload["cache_hit_rate"] = engine_stats["cache_hit_rate"]
        payload["solvers"] = {
            "solved": engine_stats["solved"],
            "wins": engine_stats["wins"],
            "win_rates": engine_stats["win_rates"],
        }
        payload["tenants"] = self.tenants.usage()
        payload["degraded_mode"] = self.degraded.snapshot()
        return payload

    # ------------------------------------------------------------------
    async def _handle_solve(
        self,
        request: Dict[str, Any],
        send: Sender,
        reader: Optional[asyncio.StreamReader] = None,
    ) -> None:
        # Phase 1 — validate everything up front so a malformed request
        # is one clean error line, never a dead connection.
        tenant: Optional[TenantState] = None
        try:
            tenant = self.tenants.resolve(
                request.get("tenant"), request.get("key")
            )
            priority = parse_priority(request, tenant)
            raw_cases = request.get("cases")
            if not isinstance(raw_cases, list) or not raw_cases:
                raise SolverError("'cases' must be a non-empty list")
            items = [
                parse_case(case, index)
                for index, case in enumerate(raw_cases)
            ]
            overrides = validate_overrides(request)
        except RequestRejected as exc:
            self.metrics.rejected_total += 1
            await send(exc.as_event())
            return
        except (ReproError, ValueError, TypeError) as exc:
            await send({"event": "error", "error": str(exc)})
            return

        # Phase 2 — admission: take a slot, answer retry_after, or —
        # under sustained saturation — fall through to degraded serving
        # (a heuristic-only answer beats a rejection the client will
        # only retry into the same saturated window).
        admitted = False
        degraded_serve = self.degraded.degraded()
        if self.admission is not None:
            try:
                await self.admission.admit(tenant, priority)
                admitted = True
            except RequestRejected as exc:
                load_shed = exc.code in (
                    REJECT_SATURATED,
                    REJECT_TENANT_SATURATED,
                )
                if load_shed:
                    self.degraded.note_saturation()
                if load_shed and self.degraded.degraded():
                    degraded_serve = True
                else:
                    self.metrics.rejected_total += 1
                    await send(exc.as_event())
                    return
        if degraded_serve:
            # Best-effort: strip the exact backends everywhere (request
            # overrides, per-case member sets, and the engine default).
            overrides = dict(overrides)
            overrides["members"] = heuristic_members(
                overrides.get("members", self.engine.members)
            )
            items = [
                BatchItem(
                    item.case_id,
                    item.matrix,
                    (
                        None
                        if item.members is None
                        else heuristic_members(item.members)
                    ),
                )
                for item in items
            ]
            self.metrics.degraded_total += 1
            self.degraded.served_degraded += 1

        # Phase 3 — stream; *always* answer, even on internal errors.
        # A watcher on the connection's read side turns a vanished
        # client into prompt cancellation of the underlying solves
        # instead of budget burned for a reader that is gone.
        self.metrics.requests_total += 1
        tenant.requests += 1
        tenant.cases += len(items)
        self.metrics.cases_submitted += len(items)
        include_timing = bool(request.get("include_timing", True))
        began = time.perf_counter()
        done = 0
        eof_task: Optional[asyncio.Task] = None
        if reader is not None:
            # The protocol sends nothing after the request line, so a
            # completed read-to-EOF means the peer hung up.
            eof_task = asyncio.create_task(
                reader.read(), name="client-eof-watch"
            )
        stream = self.engine.stream(items, **overrides)
        try:
            iterator = stream.__aiter__()
            while True:
                next_event = asyncio.ensure_future(iterator.__anext__())
                if eof_task is None:
                    waiting = {next_event}
                else:
                    waiting = {next_event, eof_task}
                await asyncio.wait(
                    waiting, return_when=asyncio.FIRST_COMPLETED
                )
                if (
                    eof_task is not None
                    and eof_task.done()
                    and not next_event.done()
                ):
                    next_event.cancel()
                    # Closing the generator runs stream()'s finally:
                    # cancel tokens fire and in-flight work aborts at
                    # its next deadline poll.
                    await iterator.aclose()
                    raise ConnectionResetError(
                        "client disconnected mid-stream"
                    )
                try:
                    event = await next_event
                except StopAsyncIteration:
                    break
                if event.kind == WORKER_CRASHED:
                    self.metrics.worker_crash_events += 1
                if event.terminal:
                    done += 1
                    self.metrics.record_terminal(
                        event.kind, from_cache=event.from_cache
                    )
                    if event.kind == "done":
                        tenant.cases_completed += 1
                        if event.from_cache:
                            tenant.cache_hits += 1
                        elif event.record is not None:
                            # Quota is charged for compute actually
                            # burned; cache hits ride free.
                            tenant.charge(
                                event.case_id,
                                event.record.result.wall_seconds,
                            )
                            if exact_backend_timed_out(
                                event.record.result
                            ):
                                self.degraded.note_exact_timeout()
                payload = event.as_dict(include_timing=include_timing)
                if degraded_serve:
                    payload["degraded"] = True
                await send(payload)
            done_line: Dict[str, Any] = {
                "event": "batch_done",
                "count": len(items),
                "completed": done,
                "tenant": tenant.config.name,
            }
            if degraded_serve:
                done_line["degraded"] = True
            await send(done_line)
        except (ConnectionResetError, BrokenPipeError):
            raise  # peer is gone; no point writing an error line
        except Exception as exc:
            # Validation catches the knowable failures; whatever still
            # escapes the engine must not kill the connection silently.
            await send(
                {
                    "event": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
        finally:
            if eof_task is not None:
                eof_task.cancel()
                try:
                    await eof_task
                # Reaping a watcher we cancelled; connection already gone.
                # repro-lint: disable=REP007 (reaping a cancelled watcher)
                except (asyncio.CancelledError, Exception):
                    pass
            try:
                await stream.aclose()  # no-op when already exhausted
            # Double-close on a dead peer has nothing left to report.
            # repro-lint: disable=REP007 (double-close on a dead peer)
            except Exception:
                pass
            if admitted and self.admission is not None:
                self.admission.release(
                    tenant, time.perf_counter() - began
                )


class SolveGateway(StreamFront):
    """Serve the shared front over TCP for remote, multi-tenant traffic.

    ``port=0`` binds an ephemeral port; :attr:`port` holds the bound
    value once :meth:`run` is listening (tests and supervisors poll
    it).  The gateway trusts its network boundary as much as you do:
    bind ``127.0.0.1`` behind a TLS terminator for anything public.
    """

    def __init__(
        self,
        engine: AsyncSolveEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants: Optional[TenantRegistry] = None,
        admission: Optional[AdmissionController] = None,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        super().__init__(
            engine, tenants=tenants, admission=admission, metrics=metrics
        )
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def run(
        self,
        *,
        on_ready: Optional[Callable[["SolveGateway"], None]] = None,
    ) -> None:
        """Listen until a ``shutdown`` op (or cancellation).

        ``on_ready`` fires once the socket is bound — with ``port=0``
        that is the first moment the real port is known, so banners and
        supervisors should report from here, not from the requested
        arguments.
        """
        self.engine.prewarm()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if on_ready is not None:
            on_ready(self)
        try:
            async with self._server:
                await self._stop.wait()
        finally:
            self._server = None
            self.engine.close()


async def serve_gateway(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    tenants: Optional[TenantRegistry] = None,
    admission: Optional[AdmissionController] = None,
    on_ready: Optional[Callable[[SolveGateway], None]] = None,
    **engine_options: Any,
) -> None:
    """Build an engine and serve it over TCP until shutdown."""
    gateway = SolveGateway(
        AsyncSolveEngine(**engine_options),
        host=host,
        port=port,
        tenants=tenants,
        admission=admission,
    )
    await gateway.run(on_ready=on_ready)


def run_gateway(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    tenants: Optional[TenantRegistry] = None,
    admission: Optional[AdmissionController] = None,
    on_ready: Optional[Callable[[SolveGateway], None]] = None,
    **engine_options: Any,
) -> int:
    """Blocking entry point used by ``python -m repro gateway``."""
    try:
        asyncio.run(
            serve_gateway(
                host,
                port,
                tenants=tenants,
                admission=admission,
                on_ready=on_ready,
                **engine_options,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0
