"""Journaled, crash-safe GC and compaction for the sharded cache store.

The sharded tier (:mod:`repro.server.shards`) keeps individual writes
torn-proof, but a *bounded* store needs a maintenance pass that deletes
things — and deletion across many shard files cannot be atomic.  This
module makes it crash-safe instead: every pass writes its plan to a
journal first, then executes it in idempotent steps, so a SIGKILL at
any instant leaves a store the next opener can finish or discard.

Journal protocol (``gc-journal.json`` in the store root, written via
atomic replace):

``planned``
    The eviction plan is on disk: the set of keys to remove, each with
    the creation stamp it had when chosen.  Nothing has been deleted
    yet.  Crash here → resume re-executes the sweep from the plan.
``sweeping``
    Shard rewrites are in flight.  Each key is removed only if its
    creation stamp still matches the plan, so re-running the sweep
    after a crash is idempotent *and* cannot destroy an entry that a
    concurrent writer refreshed after the plan was taken.  Crash here
    → resume re-sweeps; already-removed keys are simply absent.
``committed``
    All shard rewrites landed and the index was rebuilt.  The only
    remaining step is deleting the journal.  Crash here → resume just
    cleans up.

A corrupt journal is damage like a corrupt shard: quarantined, the
index rebuilt from shards, and the pass abandoned — surviving entries
stay servable because nothing sweeps without a readable plan.

Passes are serialized by a non-blocking ``gc.lock``: the write path
that notices the store over cap *requests* a pass and skips if one is
already running; ``python -m repro cache gc`` waits its turn.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.service import faults
from repro.server.shards import (
    ShardedDiskTier,
    atomic_write_json,
    quarantine_file,
    ttl_now,
)
from repro.utils.clock import wall_now
from repro.utils.fileio import locked_file, try_locked_file

JOURNAL_NAME = "gc-journal.json"
JOURNAL_TYPE = "portfolio_cache_gc_journal"
JOURNAL_FORMAT_VERSION = 1

STATE_PLANNED = "planned"
STATE_SWEEPING = "sweeping"
STATE_COMMITTED = "committed"

TMP_ORPHAN_SECONDS = 300.0
"""Age past which a leftover ``.tmp`` file is an orphan (a live atomic
write holds its tempfile for milliseconds)."""

CORRUPT_RETENTION_SECONDS = 7 * 24 * 3600.0
"""How long quarantined ``*.corrupt-*`` files are kept for postmortems
before compaction reclaims the space."""

MAX_PASSES = 3
"""Cap-enforcement passes per :func:`run_gc` call: concurrent writers
can push the store back over cap mid-sweep, so one pass may not land
under the limit — but unbounded looping against a firehose would never
return."""

logger = logging.getLogger(__name__)


@dataclass
class GcReport:
    """What one :func:`run_gc` call did (or why it did nothing)."""

    ran: bool = False
    resumed: bool = False
    passes: int = 0
    evicted_keys: List[str] = field(default_factory=list)
    expired_keys: List[str] = field(default_factory=list)
    removed_tmp: int = 0
    removed_corrupt: int = 0
    removed_empty_shards: int = 0
    bytes_after: int = 0
    entries_after: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ran": self.ran,
            "resumed": self.resumed,
            "passes": self.passes,
            "evicted": len(self.evicted_keys),
            "expired": len(self.expired_keys),
            "removed_tmp": self.removed_tmp,
            "removed_corrupt": self.removed_corrupt,
            "removed_empty_shards": self.removed_empty_shards,
            "bytes_after": self.bytes_after,
            "entries_after": self.entries_after,
        }


def _gc_lock(tier: ShardedDiskTier) -> Path:
    return tier.root / "gc.lock"


# ----------------------------------------------------------------------
# Journal IO
# ----------------------------------------------------------------------
def _write_journal(tier: ShardedDiskTier, payload: Dict[str, Any]) -> None:
    atomic_write_json(tier.journal_path(), payload, sort_keys=True)


def _read_journal(tier: ShardedDiskTier) -> Optional[Dict[str, Any]]:
    path = tier.journal_path()
    try:
        with open(path) as stream:
            payload = json.load(stream)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        if quarantine_file(path, f"bad GC journal: {exc}") is not None:
            tier.quarantined += 1
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("type") != JOURNAL_TYPE
        or payload.get("version", 0) > JOURNAL_FORMAT_VERSION
        or not isinstance(payload.get("evict"), dict)
        or payload.get("state")
        not in (STATE_PLANNED, STATE_SWEEPING, STATE_COMMITTED)
    ):
        if quarantine_file(path, "not a GC journal") is not None:
            tier.quarantined += 1
        return None
    return payload


def _clear_journal(tier: ShardedDiskTier) -> None:
    try:
        os.unlink(tier.journal_path())
    except FileNotFoundError:
        pass


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def _plan_evictions(
    tier: ShardedDiskTier, index: Dict[str, Any]
) -> Tuple[Dict[str, float], List[str], List[str]]:
    """Choose what dies: ``{key: created-stamp}`` plus the split into
    TTL-expired and cap-evicted keys (for reporting).

    Order: TTL-expired entries go unconditionally; then entries leave
    least-recently-used-first until both caps hold.  Legacy entries
    (no stamps, ``a == 0``) naturally sort oldest, so a bounded store
    sheds its unstamped history before anything it can actually age.
    """
    limits = tier.limits
    entries: Dict[str, Dict[str, Any]] = index.get("entries", {})
    now = ttl_now()
    doomed: Dict[str, float] = {}
    expired: List[str] = []
    for key, meta in entries.items():
        if limits.expired(meta.get("c") or 0, now):
            doomed[key] = float(meta.get("c") or 0)
            expired.append(key)

    total_bytes = sum(
        int(meta.get("b", 0) or 0)
        for key, meta in entries.items()
        if key not in doomed
    )
    total_entries = len(entries) - len(doomed)
    evicted: List[str] = []
    if limits.over_caps(total_bytes, total_entries):
        by_lru = sorted(
            (key for key in entries if key not in doomed),
            key=lambda key: (
                entries[key].get("a") or 0,
                entries[key].get("c") or 0,
                key,
            ),
        )
        for key in by_lru:
            if not limits.over_caps(total_bytes, total_entries):
                break
            meta = entries[key]
            doomed[key] = float(meta.get("c") or 0)
            evicted.append(key)
            total_bytes -= int(meta.get("b", 0) or 0)
            total_entries -= 1
    return doomed, expired, evicted


# ----------------------------------------------------------------------
# Sweep + compaction
# ----------------------------------------------------------------------
def _sweep(tier: ShardedDiskTier, doomed: Dict[str, float]) -> List[str]:
    """Remove planned keys from their shards; returns what was removed.

    A key is removed only while its on-disk creation stamp still equals
    the planned one — an entry rewritten since the plan is *newer data*
    the plan knows nothing about, and survives.  Keys already absent
    (a previous crashed sweep got them) are skipped silently, which is
    what makes re-running a journal idempotent.
    """
    by_shard: Dict[Path, List[str]] = {}
    for key in doomed:
        by_shard.setdefault(tier.shard_path(key), []).append(key)
    removed: List[str] = []
    crash_armed = True
    for shard, keys in sorted(by_shard.items()):
        with locked_file(tier._lock_path(shard)):
            data = tier._read_shard(shard)
            entries = data["entries"]
            meta = data["meta"]
            dropped = False
            for key in keys:
                if key not in entries:
                    continue
                stamp = float((meta.get(key) or {}).get("c") or 0)
                if stamp != doomed[key]:
                    continue  # refreshed since the plan: keep it
                entries.pop(key)
                meta.pop(key, None)
                removed.append(key)
                dropped = True
            if dropped:
                tier._write_shard(shard, entries, meta)
        if crash_armed and removed:
            crash_armed = False
            faults.maybe_crash_gc("mid-sweep")
    return removed


def _compact(tier: ShardedDiskTier, report: GcReport) -> None:
    """Reclaim dead weight: orphaned tempfiles, aged quarantine files,
    and shards whose last entry was just evicted."""
    now = wall_now()
    for leftover in tier.root.glob(".*.tmp"):
        try:
            if now - leftover.stat().st_mtime > TMP_ORPHAN_SECONDS:
                leftover.unlink()
                report.removed_tmp += 1
        except OSError:
            continue
    for corrupt in tier.root.glob("*.corrupt-*"):
        try:
            if now - corrupt.stat().st_mtime > CORRUPT_RETENTION_SECONDS:
                corrupt.unlink()
                report.removed_corrupt += 1
        except OSError:
            continue
    for shard in sorted(tier.root.glob("shard-*.json")):
        with locked_file(tier._lock_path(shard)):
            if not tier._read_shard(shard)["entries"]:
                try:
                    shard.unlink()
                    report.removed_empty_shards += 1
                except OSError:
                    pass


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------
def _execute_journal(
    tier: ShardedDiskTier, journal: Dict[str, Any], report: GcReport
) -> None:
    """Drive one journal from its current state to completion.

    The caller holds the GC lock.  Every step is safe to repeat, so
    this same function serves both fresh passes and crash resume.
    """
    state = journal["state"]
    doomed = {
        key: float(stamp) for key, stamp in journal["evict"].items()
    }
    if state in (STATE_PLANNED, STATE_SWEEPING):
        if state == STATE_PLANNED:
            faults.maybe_crash_gc(STATE_PLANNED)
            journal = dict(journal, state=STATE_SWEEPING)
            _write_journal(tier, journal)
        removed = _sweep(tier, doomed)
        report.evicted_keys.extend(removed)
        tier.store_evictions += len(removed)
        _compact(tier, report)
        tier.rebuild_index()
        journal = dict(journal, state=STATE_COMMITTED)
        _write_journal(tier, journal)
        faults.maybe_crash_gc(STATE_COMMITTED)
    _clear_journal(tier)


def _one_pass(tier: ShardedDiskTier, report: GcReport) -> None:
    index = tier.load_index(verify=True)
    doomed, expired, _evicted = _plan_evictions(tier, index)
    report.expired_keys.extend(expired)
    journal = {
        "type": JOURNAL_TYPE,
        "version": JOURNAL_FORMAT_VERSION,
        "state": STATE_PLANNED,
        "evict": doomed,
        "planned_at": wall_now(),
    }
    _write_journal(tier, journal)
    _execute_journal(tier, journal, report)


def run_gc(tier: ShardedDiskTier, *, block: bool = True) -> GcReport:
    """Run a full GC/compaction pass; returns what happened.

    With ``block=False`` (the write path's cap trigger) the call
    returns immediately when another process holds the GC lock — that
    process's pass is already bringing the store under cap.  Repeats
    up to :data:`MAX_PASSES` while concurrent writers keep pushing the
    store back over its caps.
    """
    report = GcReport()
    with try_locked_file(_gc_lock(tier)) as acquired:
        if not acquired:
            if not block:
                return report
        elif _finish_and_run(tier, report):
            return report
    if not block:
        return report
    # Blocking request that lost the race: queue behind the running
    # pass, then run our own (the store may have grown meanwhile).
    with locked_file(_gc_lock(tier)):
        _finish_and_run(tier, report)
    return report


def _finish_and_run(tier: ShardedDiskTier, report: GcReport) -> bool:
    """Under the GC lock: resume any pending journal, then run fresh
    passes until the caps hold (or :data:`MAX_PASSES` is spent)."""
    pending = _read_journal(tier)
    if pending is not None:
        report.resumed = True
        _execute_journal(tier, pending, report)
    for _ in range(MAX_PASSES):
        report.ran = True
        report.passes += 1
        tier.gc_runs += 1
        _one_pass(tier, report)
        if not tier.limits.over_caps(
            tier.bytes_used(), tier.entry_count()
        ):
            break
    report.bytes_after = tier.bytes_used()
    report.entries_after = tier.entry_count()
    return True


def resume_pending(tier: ShardedDiskTier) -> Optional[GcReport]:
    """Finish a journal left by a GC pass that died mid-flight.

    Called on every store open.  The common case (no journal) is one
    ``stat`` and returns ``None``.  When another process holds the GC
    lock the journal is *its* live pass, not a crash leftover — skip.
    """
    try:
        if not tier.journal_path().exists():
            return None
    except OSError:
        return None
    report = GcReport()
    with try_locked_file(_gc_lock(tier)) as acquired:
        if not acquired:
            return None
        pending = _read_journal(tier)
        if pending is None:
            return None
        logger.warning(
            "resuming interrupted cache GC in %s (state=%s, %d planned)",
            tier.root,
            pending.get("state"),
            len(pending.get("evict", {})),
        )
        report.resumed = True
        _execute_journal(tier, pending, report)
        report.bytes_after = tier.bytes_used()
        report.entries_after = tier.entry_count()
    return report


__all__ = [
    "GcReport",
    "JOURNAL_NAME",
    "STATE_COMMITTED",
    "STATE_PLANNED",
    "STATE_SWEEPING",
    "resume_pending",
    "run_gc",
]
