"""Intra-instance racing: run exact backends concurrently, cancel losers.

The sequential portfolio gives each exact backend its own time slice;
when SAP certifies in milliseconds, a ``branch_bound`` member that was
*earlier* in the spec burns its whole slice first.  Racing runs every
exact member in its own thread against the same wall clock and delivers
a cooperative cancel to the losers the moment one proves optimality —
the branch-and-bound search polls its deadline every 64 nodes and the
SMT descent between oracle queries, so losers die quickly.

Determinism contract
--------------------

A race's *completion order* is scheduler noise, so two rules keep the
provenance reproducible:

* a certifying racer only cancels members **later in spec order** —
  earlier members always run to completion, so the first-prover-in-spec
  -order resolution of :func:`repro.service.portfolio._resolve` cannot
  flip between runs;
* outcomes are returned in spec order regardless of completion order.

Member order is therefore a priority order: put the backend you trust
to certify fastest first (the default portfolio puts ``sap`` before
``branch_bound``).

The GIL makes the race concurrent rather than parallel for these pure
Python solvers; the win is *latency* — the portfolio no longer waits
for a loser's full budget slice — not extra throughput.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.binary_matrix import BinaryMatrix
from repro.core.partition import Partition

RACE_LOSS = "cancelled: lost intra-instance race"
"""Error recorded on racers aborted because a peer certified first."""


class RaceToken:
    """Cooperative cancellation flag, optionally chained to a parent.

    ``is_set()`` reads true once this token *or any ancestor* is set, so
    a per-instance cancel from :class:`repro.server.engine
    .AsyncSolveEngine` propagates into every racer without the racers
    sharing one event (racers must be cancellable individually).
    """

    def __init__(self, parent: Optional[object] = None) -> None:
        self._event = threading.Event()
        self._parent = parent

    def set(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        if self._event.is_set():
            return True
        parent = self._parent
        return parent is not None and parent.is_set()

    def __repr__(self) -> str:
        return f"RaceToken(set={self.is_set()})"


def race_members(
    matrix: BinaryMatrix,
    members: Sequence[str],
    *,
    seeds: Optional[Dict[str, Optional[int]]] = None,
    time_budget: Optional[float] = None,
    upper_hint: Optional[Partition] = None,
    cancel: Optional[object] = None,
    cancel_losers: bool = True,
) -> List["MemberOutcome"]:
    """Run ``members`` concurrently on ``matrix``; outcomes in spec order.

    Every member gets the same ``time_budget`` (they overlap on the wall
    clock, so the budget is a per-racer bound, not a shared pot) and the
    same ``upper_hint``.  With ``cancel_losers`` a proof of optimality
    cancels all members later in spec order; losers that abort report a
    ``cancelled: ...`` error instead of a bare budget exhaustion.
    ``cancel`` chains an external per-instance abort into every racer.
    """
    from repro.service.portfolio import MemberOutcome, run_member

    names = list(members)
    if not names:
        return []
    seeds = seeds or {}
    if len(names) == 1:
        # No peers to race; keep the call single-threaded.
        return [
            run_member(
                matrix,
                names[0],
                seed=seeds.get(names[0]),
                time_budget=time_budget,
                upper_hint=upper_hint,
                cancel=cancel,
            )
        ]

    tokens = {name: RaceToken(parent=cancel) for name in names}
    outcomes: List[Optional[MemberOutcome]] = [None] * len(names)
    lock = threading.Lock()

    def work(index: int, name: str) -> None:
        outcome = run_member(
            matrix,
            name,
            seed=seeds.get(name),
            time_budget=time_budget,
            upper_hint=upper_hint,
            cancel=tokens[name],
        )
        with lock:
            outcomes[index] = outcome
            if cancel_losers and outcome.proved_optimal:
                for loser in names[index + 1:]:
                    tokens[loser].set()

    threads = [
        threading.Thread(
            target=work,
            args=(index, name),
            name=f"race-{name}",
            daemon=True,
        )
        for index, name in enumerate(names)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    settled: List[MemberOutcome] = []
    for name, outcome in zip(names, outcomes):
        assert outcome is not None  # every thread writes its slot
        aborted = (
            tokens[name].is_set()
            and not outcome.proved_optimal
            and outcome.error is not None
        )
        if aborted and (cancel is None or not cancel.is_set()):
            outcome = replace(outcome, error=RACE_LOSS)
        settled.append(outcome)
    return settled
