"""Streaming solve server: the traffic-facing layer above the service.

Where :mod:`repro.service` turns one batch into results, this package
turns a *stream of requests* into a *stream of results*:

* :mod:`engine` — :class:`AsyncSolveEngine`, an asyncio front over an
  executor that yields per-instance :class:`SolveEvent` s as they
  complete, with bounded in-flight backpressure and per-instance
  cancellation;
* :mod:`racing` — intra-instance racing of the exact backends with
  cooperative loser cancellation (``race="concurrent"`` on the
  portfolio/batch/engine entry points);
* :mod:`shards` — a hash-prefix-sharded, ``fcntl``-locked disk tier so
  concurrent runners on one host share a result cache safely
  (``ResultCache.sharded``);
* :mod:`daemon` / :mod:`client` — a JSON-lines unix-socket server
  (``python -m repro serve``) and client (``python -m repro submit``)
  that amortize pool and cache warmup across requests;
* :mod:`gateway` / :mod:`tenancy` — the multi-tenant TCP front
  (``python -m repro gateway``): per-tenant identities, priorities and
  rolling compute quotas, priority-aware admission control that rejects
  with ``retry_after`` instead of queueing unboundedly, and a
  ``metrics`` op reporting queue depth, per-tenant usage, cache hit
  rate, and per-solver win rates.  The daemon binds the same front to
  a unix socket, so both deployments share one stats surface.

The serving stack is fault-tolerant end to end: worker death respawns
the pool and re-dispatches only the lost cases (``worker_crashed``
events, results marked ``status="retried"``), corrupt cache shards are
quarantined and read cold, clients retry with
:class:`repro.server.client.RetryPolicy` (capped backoff + jitter,
``retry_after`` hints, reconnect-and-resume), sustained overload flips
the front to heuristic-only *degraded* serving (``health`` op:
``ready`` / ``degraded`` / ``draining``), and a vanished client has
its in-flight solves cancelled.  The failure-class -> event-code ->
client-behavior table lives in ``docs/failure-semantics.md``; the
fault-injection harness driving the chaos tests is
:mod:`repro.service.faults`.
"""

from repro.server.client import (
    ConnectFailed,
    DaemonError,
    RetryPolicy,
    StreamInterrupted,
)
from repro.server.engine import (
    AsyncSolveEngine,
    CANCELLED,
    DONE,
    FAILED,
    MEMBER_FINISHED,
    QUEUED,
    STARTED,
    WORKER_CRASHED,
    SolveEvent,
    TERMINAL_EVENTS,
)
from repro.server.gateway import SolveGateway, StreamFront
from repro.server.racing import RaceToken, race_members
from repro.server.shards import ShardedDiskTier, quarantine_file
from repro.server.tenancy import (
    AdmissionController,
    DegradedModeController,
    HEALTH_DEGRADED,
    HEALTH_DRAINING,
    HEALTH_READY,
    RequestRejected,
    ServerMetrics,
    TenantConfig,
    TenantRegistry,
)
from repro.utils.fileio import atomic_write_json, locked_file

__all__ = [
    "AdmissionController",
    "AsyncSolveEngine",
    "CANCELLED",
    "ConnectFailed",
    "DONE",
    "DaemonError",
    "DegradedModeController",
    "FAILED",
    "HEALTH_DEGRADED",
    "HEALTH_DRAINING",
    "HEALTH_READY",
    "MEMBER_FINISHED",
    "QUEUED",
    "RaceToken",
    "RequestRejected",
    "RetryPolicy",
    "STARTED",
    "ServerMetrics",
    "ShardedDiskTier",
    "SolveEvent",
    "SolveGateway",
    "StreamFront",
    "StreamInterrupted",
    "TERMINAL_EVENTS",
    "TenantConfig",
    "TenantRegistry",
    "WORKER_CRASHED",
    "atomic_write_json",
    "locked_file",
    "quarantine_file",
    "race_members",
]
