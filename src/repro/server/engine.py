"""Async streaming solve engine: results as they finish, not as a batch.

:func:`repro.service.batch.solve_batch` barriers on the whole batch —
callers see nothing until the slowest instance lands, even though EBMF
suites mix microsecond heuristic hits with multi-second exact proofs.
:class:`AsyncSolveEngine` runs the same portfolio solves on an executor
behind an :mod:`asyncio` front and yields :class:`SolveEvent` s through
an async iterator the moment each stage completes::

    engine = AsyncSolveEngine(members=("trivial", "packing:8", "sap"))
    async for event in engine.stream(cases):
        ...  # queued -> started -> member_finished* -> done, per case

Backpressure is bounded by ``workers``: at most that many instances are
in flight on the executor at once; the rest wait in submission order.
Each in-flight instance can be cancelled cooperatively by case id
(:meth:`cancel`), which aborts the exact backends at their next
deadline poll.

The default executor runs solver threads in-process — on CPython the
GIL serializes the pure-Python solvers, so threads trade no throughput
away on a single core while keeping live ``member_finished`` events and
mid-flight cancellation.  ``executor="process"`` fans instances over a
:class:`concurrent.futures.ProcessPoolExecutor` instead (real
parallelism on multi-core hosts).  Member events cross the process
boundary on a ``multiprocessing.Manager`` queue drained by a dedicated
thread, so process-pool deployments stream ``member_finished`` live
too; each worker posts an end-of-stream marker before returning and the
engine holds the terminal event until the marker arrives, preserving
the members-before-terminal ordering.  Cancellation still only takes
effect before an instance starts (cancel flags don't cross the pickle
boundary).

A long-lived engine amortizes executor and cache warmup across many
``stream``/``solve`` calls — that is what
:mod:`repro.server.daemon` serves over a unix socket.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import multiprocessing
import threading
from dataclasses import dataclass, field
from typing import (
    Any,
    AsyncIterator,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.exceptions import SolverError
from repro.service import faults
from repro.service.batch import (
    STATUS_OK,
    STATUS_RETRIED,
    BatchRecord,
    CaseLike,
    _solve_payload_streaming,
    as_batch_items,
    instance_seed,
    solve_context,
)
from repro.service.budget import PortfolioBudget
from repro.service.cache import ResultCache, matrix_key
from repro.service.portfolio import (
    DEFAULT_PORTFOLIO,
    RACE_MODES,
    MemberOutcome,
    PortfolioResult,
    is_exact_member,
    outcome_from_dict,
    result_from_dict,
    solve_portfolio,
    validate_members,
)
from repro.service.stats import WinTally
from repro.server.racing import RaceToken

EXECUTOR_KINDS = ("thread", "process")

QUEUED = "queued"
STARTED = "started"
MEMBER_FINISHED = "member_finished"
WORKER_CRASHED = "worker_crashed"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"

TERMINAL_EVENTS = (DONE, CANCELLED, FAILED)
"""Exactly one of these ends each submitted case's event stream.
``worker_crashed`` is *not* terminal: it announces a crash being
recovered from, and the case still ends with its own terminal event."""


@dataclass(frozen=True)
class SolveEvent:
    """One step of one instance's life inside the engine."""

    kind: str
    case_id: str
    member: Optional[str] = None
    depth: Optional[int] = None
    proved_optimal: bool = False
    skipped: bool = False
    from_cache: bool = False
    retried: bool = False
    error: Optional[str] = None
    record: Optional[BatchRecord] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.kind in TERMINAL_EVENTS

    def as_dict(self, *, include_timing: bool = True) -> Dict[str, Any]:
        """JSON-lines wire form (the daemon protocol)."""
        payload: Dict[str, Any] = {
            "event": self.kind,
            "case_id": self.case_id,
        }
        if self.member is not None:
            payload["member"] = self.member
            payload["proved_optimal"] = self.proved_optimal
            payload["skipped"] = self.skipped
        if self.depth is not None:
            payload["depth"] = self.depth
        if self.from_cache:
            payload["from_cache"] = True
        if self.retried:
            payload["retried"] = True
        if self.error is not None:
            payload["error"] = self.error
        if self.record is not None:
            payload["provenance"] = self.record.provenance(
                include_timing=include_timing
            )
        return payload


def cancellation_affected(result: PortfolioResult) -> bool:
    """Did a cancel flag actually cut this solve short?

    A cancel that lands *after* the solve finished leaves a complete
    result — throwing it away (and not caching it) would waste the work
    already paid for.  Conservative in the other direction: an exact
    member that finished unproven without an error may have absorbed
    the cancel silently mid-descent, so it counts as affected.
    """
    for outcome in result.outcomes:
        if outcome.skipped and outcome.error == "cancelled":
            return True
        if outcome.error is not None and "cancelled" in outcome.error:
            return True
        if (
            is_exact_member(outcome.name)
            and not outcome.skipped
            and not outcome.proved_optimal
            and outcome.error is None
        ):
            return True
    return False


def _member_event(case_id: str, outcome: MemberOutcome) -> SolveEvent:
    return SolveEvent(
        kind=MEMBER_FINISHED,
        case_id=case_id,
        member=outcome.name,
        depth=outcome.depth,
        proved_optimal=outcome.proved_optimal,
        skipped=outcome.skipped,
        error=outcome.error,
    )


def _prewarm_probe() -> int:
    """Executed in a pool worker purely to force its process to start."""
    import os
    import time

    time.sleep(0.05)
    return os.getpid()


@dataclass(frozen=True)
class _StreamOptions:
    """One stream call's resolved configuration."""

    members: Tuple[str, ...]
    seed: Optional[int]
    budget_per_instance: Optional[float]
    budget_per_member: Optional[float]
    stop_when_optimal: bool
    race: str


class AsyncSolveEngine:
    """Streaming portfolio solves over a shared executor and cache."""

    def __init__(
        self,
        *,
        members: Sequence[str] = DEFAULT_PORTFOLIO,
        seed: Optional[int] = 2024,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        budget_per_instance: Optional[float] = None,
        budget_per_member: Optional[float] = None,
        stop_when_optimal: bool = True,
        race: str = "sequential",
        executor: str = "thread",
    ) -> None:
        if workers < 1:
            raise SolverError(f"workers must be >= 1, got {workers}")
        if race not in RACE_MODES:
            raise SolverError(
                f"race must be one of {RACE_MODES}, got {race!r}"
            )
        if executor not in EXECUTOR_KINDS:
            raise SolverError(
                f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}"
            )
        validate_members(members)
        self.members = tuple(members)
        self.seed = seed
        self.workers = workers
        self.cache = cache
        self.budget_per_instance = budget_per_instance
        self.budget_per_member = budget_per_member
        self.stop_when_optimal = stop_when_optimal
        self.race = race
        self.executor_kind = executor
        self._executor: Optional[concurrent.futures.Executor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._semaphore_loop: Optional[asyncio.AbstractEventLoop] = None
        self._active: Dict[str, RaceToken] = {}
        self._cache_hits = 0
        self._failed = 0
        self._cancelled = 0
        self._worker_crashes = 0
        self._tally = WinTally()
        # Cross-process member-event channel (lazy; process executor only).
        self._manager: Optional[multiprocessing.managers.SyncManager] = None
        self._member_events: Optional[Any] = None
        self._drainer: Optional[threading.Thread] = None
        self._sinks: Dict[
            str,
            Tuple[
                asyncio.AbstractEventLoop,
                "asyncio.Queue[SolveEvent]",
                str,
                asyncio.Event,
            ],
        ] = {}
        self._sink_tags = itertools.count()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def _process_context() -> multiprocessing.context.BaseContext:
        """Spawn, never fork: a forked worker inherits every open fd,
        including accepted server connections — the child then holds a
        client's socket open after the parent closes it, so the client
        never sees EOF and hangs waiting for the stream to end.  Spawned
        children start clean.  The (one-time) interpreter startup cost
        is why long-lived fronts :meth:`prewarm` before accepting
        traffic."""
        return multiprocessing.get_context("spawn")

    def _ensure_executor(self) -> concurrent.futures.Executor:
        if self._executor is None:
            if self.executor_kind == "process":
                self._executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self._process_context(),
                )
            else:
                self._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="solve-engine",
                )
        return self._executor

    def _respawn_executor(
        self, broken: concurrent.futures.Executor
    ) -> None:
        """Discard a pool whose worker died; the next solve respawns it.

        Identity-guarded: concurrent solves that all saw the same
        ``BrokenProcessPool`` race to call this, and only the first one
        should tear the pool down (and count the crash) — the rest find
        ``self._executor`` already pointing elsewhere.
        """
        if self._executor is broken:
            self._worker_crashes += 1
            broken.shutdown(wait=False)
            self._executor = None

    def _in_flight_semaphore(self) -> asyncio.Semaphore:
        # Semaphores bind to the running loop; recreate when the engine
        # outlives an ``asyncio.run`` (tests, repeated CLI calls).
        loop = asyncio.get_running_loop()
        if self._semaphore is None or self._semaphore_loop is not loop:
            self._semaphore = asyncio.Semaphore(self.workers)
            self._semaphore_loop = loop
        return self._semaphore

    def _ensure_member_channel(self) -> Any:
        """The shared Manager queue process workers stream events onto.

        A Manager queue (not a bare ``multiprocessing.Queue``) because
        its proxy pickles through the executor's normal argument path
        under any start method.  One drainer thread per engine blocks on
        the queue and hops each event onto the owning stream's asyncio
        queue via ``call_soon_threadsafe``.
        """
        if self._member_events is None:
            self._manager = self._process_context().Manager()
            self._member_events = self._manager.Queue()
            self._drainer = threading.Thread(
                target=self._drain_member_events,
                name="solve-engine-member-events",
                daemon=True,
            )
            self._drainer.start()
        return self._member_events

    def _drain_member_events(self) -> None:
        assert self._member_events is not None
        while True:
            try:
                item = self._member_events.get()
            except (EOFError, OSError):
                return  # manager torn down under us
            if item is None:
                return  # close() sentinel
            kind, tag, payload = item
            sink = self._sinks.get(tag)
            if sink is None:
                continue  # stream abandoned; drop the orphan event
            loop, queue, case_id, eof = sink
            try:
                if kind == "member":
                    loop.call_soon_threadsafe(
                        queue.put_nowait,
                        _member_event(case_id, outcome_from_dict(payload)),
                    )
                elif kind == "eof":
                    loop.call_soon_threadsafe(eof.set)
            except RuntimeError:
                continue  # the stream's loop already closed

    def prewarm(self) -> None:
        """Start workers (and the member-event channel) right now.

        Long-lived fronts call this before accepting traffic so the
        first request doesn't pay process-spawn latency.  A no-op for
        the thread executor beyond creating the pool object.
        """
        executor = self._ensure_executor()
        if self.executor_kind != "process":
            return
        self._ensure_member_channel()
        # Each probe sleeps just long enough that the pool can't serve
        # them all from one worker, forcing the full complement up.
        probes = [
            executor.submit(_prewarm_probe) for _ in range(self.workers)
        ]
        concurrent.futures.wait(probes, timeout=60)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._member_events is not None:
            try:
                self._member_events.put(None)
            except (EOFError, OSError):
                pass
            if self._drainer is not None:
                self._drainer.join(timeout=5)
            self._member_events = None
            self._drainer = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    async def __aenter__(self) -> "AsyncSolveEngine":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, case_id: str) -> bool:
        """Cooperatively cancel an in-flight or queued instance.

        Returns whether the id named an active instance.  A queued
        instance reports ``cancelled`` without ever starting; a running
        one aborts at its solvers' next deadline poll and reports
        ``cancelled`` with whatever partial work completed.
        """
        token = self._active.get(case_id)
        if token is None:
            return False
        token.set()
        return True

    def stats(self) -> Dict[str, Any]:
        terminal = (
            self._tally.solved
            + self._cache_hits
            + self._failed
            + self._cancelled
        )
        payload: Dict[str, Any] = {
            "members": list(self.members),
            "workers": self.workers,
            "race": self.race,
            "executor": self.executor_kind,
            "active": len(self._active),
            "cache_hits": self._cache_hits,
            "failed": self._failed,
            "cancelled": self._cancelled,
            "worker_crashes": self._worker_crashes,
            "cache_hit_rate": (
                self._cache_hits / terminal if terminal else 0.0
            ),
            # WinTally is the one shape for per-solver win reporting —
            # the scoreboard (repro.corpus.scoreboard) emits the same.
            **self._tally.as_dict(),
        }
        if self.cache is not None:
            payload["cache"] = self.cache.refresh_stats().as_dict()
            payload["cache_entries"] = len(self.cache)
        return payload

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def _resolve_options(
        self,
        members: Optional[Sequence[str]],
        seed: Optional[int],
        budget_per_instance: Optional[float],
        budget_per_member: Optional[float],
        stop_when_optimal: Optional[bool],
        race: Optional[str],
    ) -> _StreamOptions:
        if members is not None:
            validate_members(members)
        if race is not None and race not in RACE_MODES:
            raise SolverError(
                f"race must be one of {RACE_MODES}, got {race!r}"
            )
        return _StreamOptions(
            members=(
                self.members if members is None else tuple(members)
            ),
            seed=self.seed if seed is None else seed,
            budget_per_instance=(
                self.budget_per_instance
                if budget_per_instance is None
                else budget_per_instance
            ),
            budget_per_member=(
                self.budget_per_member
                if budget_per_member is None
                else budget_per_member
            ),
            stop_when_optimal=(
                self.stop_when_optimal
                if stop_when_optimal is None
                else stop_when_optimal
            ),
            race=self.race if race is None else race,
        )

    async def stream(
        self,
        cases: Sequence[CaseLike],
        *,
        members: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
        budget_per_instance: Optional[float] = None,
        budget_per_member: Optional[float] = None,
        stop_when_optimal: Optional[bool] = None,
        race: Optional[str] = None,
    ) -> AsyncIterator[SolveEvent]:
        """Yield events for ``cases`` as instances progress.

        Per-call keyword arguments override the engine defaults for
        this stream only.  Events for different instances interleave in
        completion order; each instance's own events are ordered
        ``queued``, (``started``, ``member_finished``...,) then exactly
        one terminal ``done`` / ``cancelled`` / ``failed``.  Results
        are cached and the cache is flushed when the stream drains.
        """
        options = self._resolve_options(
            members,
            seed,
            budget_per_instance,
            budget_per_member,
            stop_when_optimal,
            race,
        )
        items = as_batch_items(list(cases), members=options.members)
        for member_set in {item.members for item in items}:
            if member_set is not None:
                validate_members(member_set)
        # Chaos seam: turn an index-addressed kill target into a case id
        # while we still see the whole batch (no-op without a FaultPlan).
        faults.resolve_kill_case([item.case_id for item in items])

        queue: "asyncio.Queue[SolveEvent]" = asyncio.Queue()
        tokens: Dict[str, RaceToken] = {}
        tasks: List[asyncio.Task] = []
        for item in items:
            token = RaceToken()
            tokens[item.case_id] = token
            self._active[item.case_id] = token
            tasks.append(
                asyncio.create_task(
                    self._solve_one(item, options, queue, token),
                    name=f"solve-{item.case_id}",
                )
            )

        remaining = len(items)
        try:
            while remaining:
                event = await queue.get()
                if event.terminal:
                    remaining -= 1
                yield event
        finally:
            if remaining:
                # The consumer abandoned the stream: stop the work, not
                # just the bookkeeping tasks.
                for token in tokens.values():
                    token.set()
                for task in tasks:
                    task.cancel()
            for task in tasks:
                try:
                    await task
                # Reaping tasks we just cancelled; real outcomes streamed.
                # repro-lint: disable=REP007 (reaping cancelled tasks)
                except (asyncio.CancelledError, Exception):
                    pass
            for case_id, token in tokens.items():
                if self._active.get(case_id) is token:
                    del self._active[case_id]
            if self.cache is not None:
                self.cache.flush()

    async def _solve_one(
        self,
        item: Any,
        options: _StreamOptions,
        queue: "asyncio.Queue[SolveEvent]",
        token: RaceToken,
    ) -> None:
        case_id = item.case_id
        await queue.put(SolveEvent(kind=QUEUED, case_id=case_id))
        try:
            async with self._in_flight_semaphore():
                if token.is_set():
                    self._cancelled += 1
                    await queue.put(
                        SolveEvent(
                            kind=CANCELLED,
                            case_id=case_id,
                            error="cancelled before start",
                        )
                    )
                    return
                item_members = (
                    item.members
                    if item.members is not None
                    else options.members
                )
                context = solve_context(
                    tuple(item_members),
                    instance_seed(options.seed, case_id),
                    options.budget_per_instance,
                    options.budget_per_member,
                    options.stop_when_optimal,
                    options.race,
                )
                key = matrix_key(item.matrix, context)
                if self.cache is not None:
                    cached = self.cache.get_by_key(key)
                    if cached is not None:
                        self._cache_hits += 1
                        await queue.put(
                            SolveEvent(
                                kind=DONE,
                                case_id=case_id,
                                depth=cached.depth,
                                from_cache=True,
                                record=BatchRecord(
                                    case_id=case_id,
                                    key=key,
                                    result=cached,
                                ),
                            )
                        )
                        return
                await queue.put(SolveEvent(kind=STARTED, case_id=case_id))
                result, was_retried = await self._solve_in_executor(
                    item, options, queue, token
                )
                if token.is_set() and cancellation_affected(result):
                    self._cancelled += 1
                    await queue.put(
                        SolveEvent(
                            kind=CANCELLED,
                            case_id=case_id,
                            depth=result.depth,
                            error="cancelled mid-solve",
                        )
                    )
                    return
                # A cancel that arrived after the solve completed (or
                # never touched it) leaves a full result: keep it.
                if self.cache is not None:
                    self.cache.put(item.matrix, result, context)
                self._tally.record_result(result)
                await queue.put(
                    SolveEvent(
                        kind=DONE,
                        case_id=case_id,
                        depth=result.depth,
                        retried=was_retried,
                        record=BatchRecord(
                            case_id=case_id,
                            key=key,
                            result=result,
                            status=(
                                STATUS_RETRIED if was_retried else STATUS_OK
                            ),
                        ),
                    )
                )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # every case must emit a terminal event,
            # or the stream would wait forever on an internal error.
            self._failed += 1
            await queue.put(
                SolveEvent(
                    kind=FAILED,
                    case_id=case_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )

    async def _solve_in_executor(
        self,
        item: Any,
        options: _StreamOptions,
        queue: "asyncio.Queue[SolveEvent]",
        token: RaceToken,
    ) -> Tuple[PortfolioResult, bool]:
        """Solve one instance; returns ``(result, was_retried)``.

        ``was_retried`` is True when the first dispatch's worker died
        (``BrokenProcessPool``) and the instance was re-solved on a
        fresh pool — the result content is still deterministic (the
        per-case seed makes the retry byte-identical), only the status
        mark differs.
        """
        loop = asyncio.get_running_loop()
        case_id = item.case_id
        members = (
            item.members if item.members is not None else options.members
        )
        seed = instance_seed(options.seed, case_id)
        executor = self._ensure_executor()

        if self.executor_kind == "process":
            # Cross-process: the batch worker payload plus a Manager
            # queue for live member events.  Mid-run cancellation still
            # doesn't cross the pickle boundary (cancel applies up to
            # the start); member events do, routed by a per-solve tag so
            # concurrent streams reusing case ids cannot cross wires.
            payload = (
                case_id,
                item.matrix.row_masks,
                item.matrix.num_cols,
                tuple(members),
                seed,
                options.budget_per_instance,
                options.budget_per_member,
                options.stop_when_optimal,
                options.race,
            )
            events = self._ensure_member_channel()
            for attempt in range(2):
                tag = f"solve-{next(self._sink_tags)}"
                eof = asyncio.Event()
                self._sinks[tag] = (loop, queue, case_id, eof)
                try:
                    _, result_dict = await loop.run_in_executor(
                        executor,
                        _solve_payload_streaming,
                        payload,
                        events,
                        tag,
                    )
                    # The worker posts its eof marker before returning,
                    # but the drainer thread delivers asynchronously:
                    # wait for it so every member event precedes the
                    # terminal event.  A worker that died without the
                    # marker (pool crash) must not wedge the stream —
                    # bounded wait, then go on.
                    try:
                        await asyncio.wait_for(eof.wait(), timeout=10.0)
                    except asyncio.TimeoutError:
                        pass
                    return result_from_dict(result_dict), attempt > 0
                except concurrent.futures.process.BrokenProcessPool:
                    # Worker death poisons the whole pool: retire it,
                    # disarm the injected kill (so a chaos retry can't
                    # crash-loop), announce the crash, and re-dispatch
                    # this case once on a fresh pool.
                    self._respawn_executor(executor)
                    faults.disarm("kill_worker_on_case")
                    await queue.put(
                        SolveEvent(
                            kind=WORKER_CRASHED,
                            case_id=case_id,
                            error=(
                                "process pool worker died"
                                f" (dispatch {attempt + 1})"
                            ),
                        )
                    )
                    if attempt:
                        raise SolverError(
                            f"case {case_id!r} crashed the worker pool "
                            "twice; giving up (likely a poison-pill "
                            "instance)"
                        )
                    executor = self._ensure_executor()
                finally:
                    self._sinks.pop(tag, None)
            raise AssertionError("unreachable: retry loop exits above")

        def on_member(outcome: MemberOutcome) -> None:
            # Called from the solver thread; hop back onto the loop.
            loop.call_soon_threadsafe(
                queue.put_nowait, _member_event(case_id, outcome)
            )

        def solve() -> PortfolioResult:
            return solve_portfolio(
                item.matrix,
                members=members,
                seed=seed,
                budget=PortfolioBudget(
                    options.budget_per_instance,
                    per_member_seconds=options.budget_per_member,
                ),
                stop_when_optimal=options.stop_when_optimal,
                race=options.race,
                cancel=token,
                on_member=on_member,
            )

        return await loop.run_in_executor(executor, solve), False

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    async def solve(
        self, cases: Sequence[CaseLike], **overrides: Any
    ) -> List[BatchRecord]:
        """Drain a stream into input-ordered records (async solve_batch).

        Raises :class:`SolverError` if any instance failed or was
        cancelled — callers that need partial results should consume
        :meth:`stream` directly.
        """
        by_id: Dict[str, BatchRecord] = {}
        problems: List[str] = []
        order: List[str] = []
        async for event in self.stream(cases, **overrides):
            if event.kind == QUEUED:
                order.append(event.case_id)
            elif event.kind == DONE:
                assert event.record is not None
                by_id[event.case_id] = event.record
            elif event.kind in (CANCELLED, FAILED):
                problems.append(
                    f"{event.case_id}: {event.error or event.kind}"
                )
        if problems:
            raise SolverError(
                "streaming solve incomplete: " + "; ".join(problems)
            )
        return [by_id[case_id] for case_id in order]
