"""Async streaming solve engine: results as they finish, not as a batch.

:func:`repro.service.batch.solve_batch` barriers on the whole batch —
callers see nothing until the slowest instance lands, even though EBMF
suites mix microsecond heuristic hits with multi-second exact proofs.
:class:`AsyncSolveEngine` runs the same portfolio solves on an executor
behind an :mod:`asyncio` front and yields :class:`SolveEvent` s through
an async iterator the moment each stage completes::

    engine = AsyncSolveEngine(members=("trivial", "packing:8", "sap"))
    async for event in engine.stream(cases):
        ...  # queued -> started -> member_finished* -> done, per case

Backpressure is bounded by ``workers``: at most that many instances are
in flight on the executor at once; the rest wait in submission order.
Each in-flight instance can be cancelled cooperatively by case id
(:meth:`cancel`), which aborts the exact backends at their next
deadline poll.

The default executor runs solver threads in-process — on CPython the
GIL serializes the pure-Python solvers, so threads trade no throughput
away on a single core while keeping live ``member_finished`` events and
mid-flight cancellation.  ``executor="process"`` fans instances over a
:class:`concurrent.futures.ProcessPoolExecutor` instead (real
parallelism on multi-core hosts), at the cost of member-level events
and of cancellation only taking effect before an instance starts.

A long-lived engine amortizes executor and cache warmup across many
``stream``/``solve`` calls — that is what
:mod:`repro.server.daemon` serves over a unix socket.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from dataclasses import dataclass, field
from typing import (
    Any,
    AsyncIterator,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.exceptions import SolverError
from repro.service.batch import (
    BatchRecord,
    CaseLike,
    _solve_payload,
    as_batch_items,
    instance_seed,
    solve_context,
)
from repro.service.budget import PortfolioBudget
from repro.service.cache import ResultCache, matrix_key
from repro.service.portfolio import (
    DEFAULT_PORTFOLIO,
    RACE_MODES,
    MemberOutcome,
    PortfolioResult,
    is_exact_member,
    result_from_dict,
    solve_portfolio,
    validate_members,
)
from repro.server.racing import RaceToken

EXECUTOR_KINDS = ("thread", "process")

QUEUED = "queued"
STARTED = "started"
MEMBER_FINISHED = "member_finished"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"

TERMINAL_EVENTS = (DONE, CANCELLED, FAILED)
"""Exactly one of these ends each submitted case's event stream."""


@dataclass(frozen=True)
class SolveEvent:
    """One step of one instance's life inside the engine."""

    kind: str
    case_id: str
    member: Optional[str] = None
    depth: Optional[int] = None
    proved_optimal: bool = False
    skipped: bool = False
    from_cache: bool = False
    error: Optional[str] = None
    record: Optional[BatchRecord] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.kind in TERMINAL_EVENTS

    def as_dict(self, *, include_timing: bool = True) -> Dict[str, Any]:
        """JSON-lines wire form (the daemon protocol)."""
        payload: Dict[str, Any] = {
            "event": self.kind,
            "case_id": self.case_id,
        }
        if self.member is not None:
            payload["member"] = self.member
            payload["proved_optimal"] = self.proved_optimal
            payload["skipped"] = self.skipped
        if self.depth is not None:
            payload["depth"] = self.depth
        if self.from_cache:
            payload["from_cache"] = True
        if self.error is not None:
            payload["error"] = self.error
        if self.record is not None:
            payload["provenance"] = self.record.provenance(
                include_timing=include_timing
            )
        return payload


def cancellation_affected(result: PortfolioResult) -> bool:
    """Did a cancel flag actually cut this solve short?

    A cancel that lands *after* the solve finished leaves a complete
    result — throwing it away (and not caching it) would waste the work
    already paid for.  Conservative in the other direction: an exact
    member that finished unproven without an error may have absorbed
    the cancel silently mid-descent, so it counts as affected.
    """
    for outcome in result.outcomes:
        if outcome.skipped and outcome.error == "cancelled":
            return True
        if outcome.error is not None and "cancelled" in outcome.error:
            return True
        if (
            is_exact_member(outcome.name)
            and not outcome.skipped
            and not outcome.proved_optimal
            and outcome.error is None
        ):
            return True
    return False


def _member_event(case_id: str, outcome: MemberOutcome) -> SolveEvent:
    return SolveEvent(
        kind=MEMBER_FINISHED,
        case_id=case_id,
        member=outcome.name,
        depth=outcome.depth,
        proved_optimal=outcome.proved_optimal,
        skipped=outcome.skipped,
        error=outcome.error,
    )


@dataclass(frozen=True)
class _StreamOptions:
    """One stream call's resolved configuration."""

    members: Tuple[str, ...]
    seed: Optional[int]
    budget_per_instance: Optional[float]
    budget_per_member: Optional[float]
    stop_when_optimal: bool
    race: str


class AsyncSolveEngine:
    """Streaming portfolio solves over a shared executor and cache."""

    def __init__(
        self,
        *,
        members: Sequence[str] = DEFAULT_PORTFOLIO,
        seed: Optional[int] = 2024,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        budget_per_instance: Optional[float] = None,
        budget_per_member: Optional[float] = None,
        stop_when_optimal: bool = True,
        race: str = "sequential",
        executor: str = "thread",
    ) -> None:
        if workers < 1:
            raise SolverError(f"workers must be >= 1, got {workers}")
        if race not in RACE_MODES:
            raise SolverError(
                f"race must be one of {RACE_MODES}, got {race!r}"
            )
        if executor not in EXECUTOR_KINDS:
            raise SolverError(
                f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}"
            )
        validate_members(members)
        self.members = tuple(members)
        self.seed = seed
        self.workers = workers
        self.cache = cache
        self.budget_per_instance = budget_per_instance
        self.budget_per_member = budget_per_member
        self.stop_when_optimal = stop_when_optimal
        self.race = race
        self.executor_kind = executor
        self._executor: Optional[concurrent.futures.Executor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._semaphore_loop: Optional[asyncio.AbstractEventLoop] = None
        self._active: Dict[str, RaceToken] = {}
        self._solved = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> concurrent.futures.Executor:
        if self._executor is None:
            if self.executor_kind == "process":
                self._executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers
                )
            else:
                self._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="solve-engine",
                )
        return self._executor

    def _in_flight_semaphore(self) -> asyncio.Semaphore:
        # Semaphores bind to the running loop; recreate when the engine
        # outlives an ``asyncio.run`` (tests, repeated CLI calls).
        loop = asyncio.get_running_loop()
        if self._semaphore is None or self._semaphore_loop is not loop:
            self._semaphore = asyncio.Semaphore(self.workers)
            self._semaphore_loop = loop
        return self._semaphore

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "AsyncSolveEngine":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, case_id: str) -> bool:
        """Cooperatively cancel an in-flight or queued instance.

        Returns whether the id named an active instance.  A queued
        instance reports ``cancelled`` without ever starting; a running
        one aborts at its solvers' next deadline poll and reports
        ``cancelled`` with whatever partial work completed.
        """
        token = self._active.get(case_id)
        if token is None:
            return False
        token.set()
        return True

    def stats(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "members": list(self.members),
            "workers": self.workers,
            "race": self.race,
            "executor": self.executor_kind,
            "active": len(self._active),
            "solved": self._solved,
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats.as_dict()
            payload["cache_entries"] = len(self.cache)
        return payload

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def _resolve_options(
        self,
        members: Optional[Sequence[str]],
        seed: Optional[int],
        budget_per_instance: Optional[float],
        budget_per_member: Optional[float],
        stop_when_optimal: Optional[bool],
        race: Optional[str],
    ) -> _StreamOptions:
        if members is not None:
            validate_members(members)
        if race is not None and race not in RACE_MODES:
            raise SolverError(
                f"race must be one of {RACE_MODES}, got {race!r}"
            )
        return _StreamOptions(
            members=(
                self.members if members is None else tuple(members)
            ),
            seed=self.seed if seed is None else seed,
            budget_per_instance=(
                self.budget_per_instance
                if budget_per_instance is None
                else budget_per_instance
            ),
            budget_per_member=(
                self.budget_per_member
                if budget_per_member is None
                else budget_per_member
            ),
            stop_when_optimal=(
                self.stop_when_optimal
                if stop_when_optimal is None
                else stop_when_optimal
            ),
            race=self.race if race is None else race,
        )

    async def stream(
        self,
        cases: Sequence[CaseLike],
        *,
        members: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
        budget_per_instance: Optional[float] = None,
        budget_per_member: Optional[float] = None,
        stop_when_optimal: Optional[bool] = None,
        race: Optional[str] = None,
    ) -> AsyncIterator[SolveEvent]:
        """Yield events for ``cases`` as instances progress.

        Per-call keyword arguments override the engine defaults for
        this stream only.  Events for different instances interleave in
        completion order; each instance's own events are ordered
        ``queued``, (``started``, ``member_finished``...,) then exactly
        one terminal ``done`` / ``cancelled`` / ``failed``.  Results
        are cached and the cache is flushed when the stream drains.
        """
        options = self._resolve_options(
            members,
            seed,
            budget_per_instance,
            budget_per_member,
            stop_when_optimal,
            race,
        )
        items = as_batch_items(list(cases), members=options.members)
        for member_set in {item.members for item in items}:
            if member_set is not None:
                validate_members(member_set)

        queue: "asyncio.Queue[SolveEvent]" = asyncio.Queue()
        tokens: Dict[str, RaceToken] = {}
        tasks: List[asyncio.Task] = []
        for item in items:
            token = RaceToken()
            tokens[item.case_id] = token
            self._active[item.case_id] = token
            tasks.append(
                asyncio.create_task(
                    self._solve_one(item, options, queue, token),
                    name=f"solve-{item.case_id}",
                )
            )

        remaining = len(items)
        try:
            while remaining:
                event = await queue.get()
                if event.terminal:
                    remaining -= 1
                yield event
        finally:
            if remaining:
                # The consumer abandoned the stream: stop the work, not
                # just the bookkeeping tasks.
                for token in tokens.values():
                    token.set()
                for task in tasks:
                    task.cancel()
            for task in tasks:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            for case_id, token in tokens.items():
                if self._active.get(case_id) is token:
                    del self._active[case_id]
            if self.cache is not None:
                self.cache.flush()

    async def _solve_one(
        self,
        item: Any,
        options: _StreamOptions,
        queue: "asyncio.Queue[SolveEvent]",
        token: RaceToken,
    ) -> None:
        case_id = item.case_id
        await queue.put(SolveEvent(kind=QUEUED, case_id=case_id))
        try:
            async with self._in_flight_semaphore():
                if token.is_set():
                    await queue.put(
                        SolveEvent(
                            kind=CANCELLED,
                            case_id=case_id,
                            error="cancelled before start",
                        )
                    )
                    return
                item_members = (
                    item.members
                    if item.members is not None
                    else options.members
                )
                context = solve_context(
                    tuple(item_members),
                    instance_seed(options.seed, case_id),
                    options.budget_per_instance,
                    options.budget_per_member,
                    options.stop_when_optimal,
                    options.race,
                )
                key = matrix_key(item.matrix, context)
                if self.cache is not None:
                    cached = self.cache.get_by_key(key)
                    if cached is not None:
                        await queue.put(
                            SolveEvent(
                                kind=DONE,
                                case_id=case_id,
                                depth=cached.depth,
                                from_cache=True,
                                record=BatchRecord(
                                    case_id=case_id,
                                    key=key,
                                    result=cached,
                                ),
                            )
                        )
                        return
                await queue.put(SolveEvent(kind=STARTED, case_id=case_id))
                result = await self._solve_in_executor(
                    item, options, queue, token
                )
                if token.is_set() and cancellation_affected(result):
                    await queue.put(
                        SolveEvent(
                            kind=CANCELLED,
                            case_id=case_id,
                            depth=result.depth,
                            error="cancelled mid-solve",
                        )
                    )
                    return
                # A cancel that arrived after the solve completed (or
                # never touched it) leaves a full result: keep it.
                if self.cache is not None:
                    self.cache.put(item.matrix, result, context)
                self._solved += 1
                await queue.put(
                    SolveEvent(
                        kind=DONE,
                        case_id=case_id,
                        depth=result.depth,
                        record=BatchRecord(
                            case_id=case_id, key=key, result=result
                        ),
                    )
                )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # every case must emit a terminal event,
            # or the stream would wait forever on an internal error.
            await queue.put(
                SolveEvent(
                    kind=FAILED,
                    case_id=case_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )

    async def _solve_in_executor(
        self,
        item: Any,
        options: _StreamOptions,
        queue: "asyncio.Queue[SolveEvent]",
        token: RaceToken,
    ) -> PortfolioResult:
        loop = asyncio.get_running_loop()
        case_id = item.case_id
        members = (
            item.members if item.members is not None else options.members
        )
        seed = instance_seed(options.seed, case_id)
        executor = self._ensure_executor()

        if self.executor_kind == "process":
            # Cross-process: reuse the batch worker payload.  Member
            # events and mid-run cancellation don't cross the pickle
            # boundary; cancellation still applies up to the start.
            payload = (
                case_id,
                item.matrix.row_masks,
                item.matrix.num_cols,
                tuple(members),
                seed,
                options.budget_per_instance,
                options.budget_per_member,
                options.stop_when_optimal,
                options.race,
            )
            _, result_dict = await loop.run_in_executor(
                executor, _solve_payload, payload
            )
            return result_from_dict(result_dict)

        def on_member(outcome: MemberOutcome) -> None:
            # Called from the solver thread; hop back onto the loop.
            loop.call_soon_threadsafe(
                queue.put_nowait, _member_event(case_id, outcome)
            )

        def solve() -> PortfolioResult:
            return solve_portfolio(
                item.matrix,
                members=members,
                seed=seed,
                budget=PortfolioBudget(
                    options.budget_per_instance,
                    per_member_seconds=options.budget_per_member,
                ),
                stop_when_optimal=options.stop_when_optimal,
                race=options.race,
                cancel=token,
                on_member=on_member,
            )

        return await loop.run_in_executor(executor, solve)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    async def solve(
        self, cases: Sequence[CaseLike], **overrides: Any
    ) -> List[BatchRecord]:
        """Drain a stream into input-ordered records (async solve_batch).

        Raises :class:`SolverError` if any instance failed or was
        cancelled — callers that need partial results should consume
        :meth:`stream` directly.
        """
        by_id: Dict[str, BatchRecord] = {}
        problems: List[str] = []
        order: List[str] = []
        async for event in self.stream(cases, **overrides):
            if event.kind == QUEUED:
                order.append(event.case_id)
            elif event.kind == DONE:
                assert event.record is not None
                by_id[event.case_id] = event.record
            elif event.kind in (CANCELLED, FAILED):
                problems.append(
                    f"{event.case_id}: {event.error or event.kind}"
                )
        if problems:
            raise SolverError(
                "streaming solve incomplete: " + "; ".join(problems)
            )
        return [by_id[case_id] for case_id in order]
