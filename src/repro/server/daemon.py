"""JSON-lines unix-socket daemon around :class:`AsyncSolveEngine`.

``python -m repro serve`` keeps one engine — executor workers, result
cache, warm imports — alive across requests, so short-lived clients
(``python -m repro submit``, CI hooks, notebook cells) pay none of the
pool or cache warmup per call.  The daemon is the single-host binding
of the shared :class:`repro.server.gateway.StreamFront`: it speaks the
same protocol, answers the same ``stats``/``metrics`` ops from the same
counters, and accepts the same tenancy policy as the TCP
:class:`repro.server.gateway.SolveGateway` — the only difference is the
transport (a per-user ``AF_UNIX`` socket instead of a port).

Request (first line of a connection)::

    {"op": "solve", "cases": [{"case_id": "a", "rows": ["110", "011"]}],
     "members": ["trivial", "packing:8", "sap"], "seed": 7,
     "race": "concurrent"}

Response: one line per :class:`SolveEvent` (``queued`` / ``started`` /
``member_finished`` / ``done`` / ``cancelled`` / ``failed``), then a
closing ``{"event": "batch_done", ...}`` line.  Other ops — ``ping``,
``stats``, ``metrics``, ``health``, ``cancel``, ``shutdown`` — answer
with a single line.  Writes go through ``drain()``, so a slow reader
backpressures its own event stream without stalling other connections.
A client that disconnects mid-stream has its in-flight solves cancelled
(see ``docs/failure-semantics.md``).
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path
from typing import Any, Optional, Union

from repro.core.exceptions import SolverError
from repro.server.engine import AsyncSolveEngine
from repro.server.gateway import (
    PROTOCOL_VERSION,
    SOLVE_OVERRIDES,
    StreamFront,
    parse_case,
    validate_overrides,
)
from repro.server.tenancy import (
    AdmissionController,
    ServerMetrics,
    TenantRegistry,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SOLVE_OVERRIDES",
    "SolveDaemon",
    "default_socket_path",
    "parse_case",
    "run_daemon",
    "serve",
    "validate_overrides",
]

_SUN_PATH_LIMIT = 104
"""Portable ceiling on ``AF_UNIX`` path bytes (Linux allows 108, BSDs
104, both including the trailing NUL).  Checked up front so an overlong
path is a clear :class:`SolverError` naming the fix, not an
``OSError: AF_UNIX path too long`` from deep inside ``bind``."""


def check_socket_path(path: Union[str, Path]) -> None:
    """Reject socket paths that overflow ``sun_path`` before binding."""
    encoded = str(path).encode()
    if len(encoded) >= _SUN_PATH_LIMIT:
        raise SolverError(
            f"unix socket path is {len(encoded)} bytes, over the "
            f"{_SUN_PATH_LIMIT - 1}-byte AF_UNIX limit: {str(path)!r} "
            "— pass a shorter --socket path (e.g. under /tmp)"
        )


class SolveDaemon(StreamFront):
    """Serve one :class:`AsyncSolveEngine` over a unix socket.

    Optional ``tenants``/``admission`` enable the same multi-tenant
    policy as the TCP gateway; by default every caller is the anonymous
    tenant and nothing is rejected (single-user daemon behavior).
    """

    def __init__(
        self,
        socket_path: Union[str, Path],
        engine: AsyncSolveEngine,
        *,
        tenants: Optional[TenantRegistry] = None,
        admission: Optional[AdmissionController] = None,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        super().__init__(
            engine, tenants=tenants, admission=admission, metrics=metrics
        )
        self.socket_path = Path(socket_path)
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def connections(self) -> int:
        """Lifetime connection count (see ``metrics`` for the gauge)."""
        return self.metrics.connections_total

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Listen until a ``shutdown`` op (or cancellation)."""
        check_socket_path(self.socket_path)
        if self.socket_path.exists():
            # A previous daemon's socket; connect-refused stale files
            # are safe to reclaim, a live daemon is not.
            if await self._socket_alive():
                raise SolverError(
                    f"another daemon is already serving {self.socket_path}"
                )
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self.engine.prewarm()
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path)
        )
        try:
            async with self._server:
                await self._stop.wait()
        finally:
            self._server = None
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            self.engine.close()

    async def _socket_alive(self) -> bool:
        try:
            _, writer = await asyncio.open_unix_connection(
                path=str(self.socket_path)
            )
        except OSError:
            return False
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
        return True


async def serve(
    socket_path: Union[str, Path],
    *,
    tenants: Optional[TenantRegistry] = None,
    admission: Optional[AdmissionController] = None,
    **engine_options: Any,
) -> None:
    """Build an engine and serve it until shutdown (asyncio entry)."""
    daemon = SolveDaemon(
        socket_path,
        AsyncSolveEngine(**engine_options),
        tenants=tenants,
        admission=admission,
    )
    await daemon.run()


def run_daemon(
    socket_path: Union[str, Path],
    *,
    tenants: Optional[TenantRegistry] = None,
    admission: Optional[AdmissionController] = None,
    **engine_options: Any,
) -> int:
    """Blocking daemon entry point used by ``python -m repro serve``."""
    try:
        asyncio.run(
            serve(
                socket_path,
                tenants=tenants,
                admission=admission,
                **engine_options,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def default_socket_path() -> str:
    """Per-user default socket location (overridable via ``--socket``).

    Prefers ``$XDG_RUNTIME_DIR``, but falls back to ``/tmp`` when the
    runtime dir would push the path past the ``AF_UNIX`` ``sun_path``
    limit — some sandboxes nest runtime dirs deep enough that binding
    would otherwise fail with a cryptic ``OSError``.
    """
    name = f"repro-solve-{os.getuid()}.sock"
    runtime = os.environ.get("XDG_RUNTIME_DIR") or "/tmp"
    candidate = str(Path(runtime) / name)
    if len(candidate.encode()) >= _SUN_PATH_LIMIT:
        candidate = str(Path("/tmp") / name)
    return candidate
