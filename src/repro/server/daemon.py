"""JSON-lines unix-socket daemon around :class:`AsyncSolveEngine`.

``python -m repro serve`` keeps one engine — executor threads, result
cache, warm imports — alive across requests, so short-lived clients
(``python -m repro submit``, CI hooks, notebook cells) pay none of the
pool or cache warmup per call.  The protocol is one JSON object per
line, chosen over a binary framing because every tool in the repo's
orbit (jq, editors, test fixtures) already speaks it:

Request (first line of a connection)::

    {"op": "solve", "cases": [{"case_id": "a", "rows": ["110", "011"]}],
     "members": ["trivial", "packing:8", "sap"], "seed": 7,
     "race": "concurrent"}

Response: one line per :class:`SolveEvent` (``queued`` / ``started`` /
``member_finished`` / ``done`` / ``cancelled`` / ``failed``), then a
closing ``{"event": "batch_done", ...}`` line.  Other ops — ``ping``,
``stats``, ``cancel``, ``shutdown`` — answer with a single line.
Writes go through ``drain()``, so a slow reader backpressures its own
event stream without stalling other connections.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ReproError, SolverError
from repro.service.batch import BatchItem
from repro.server.engine import AsyncSolveEngine

PROTOCOL_VERSION = 1

SOLVE_OVERRIDES = (
    "members",
    "seed",
    "budget_per_instance",
    "budget_per_member",
    "stop_when_optimal",
    "race",
)


def parse_case(payload: Dict[str, Any], index: int) -> BatchItem:
    """One wire case -> :class:`BatchItem`.

    Accepts ``rows`` (list of '0'/'1' strings, the pattern-file format)
    or ``row_masks`` + ``num_cols`` (the compact form the cache and
    batch workers use).  A missing ``case_id`` is synthesized from the
    position.
    """
    if not isinstance(payload, dict):
        raise SolverError(f"case #{index} is not an object: {payload!r}")
    case_id = str(payload.get("case_id", f"case-{index:04d}"))
    if "rows" in payload:
        matrix = BinaryMatrix.from_strings(list(payload["rows"]))
    elif "row_masks" in payload and "num_cols" in payload:
        matrix = BinaryMatrix(
            [int(mask) for mask in payload["row_masks"]],
            int(payload["num_cols"]),
        )
    else:
        raise SolverError(
            f"case {case_id!r} needs 'rows' or 'row_masks'+'num_cols'"
        )
    members = payload.get("members")
    return BatchItem(
        case_id,
        matrix,
        None if members is None else tuple(str(m) for m in members),
    )


class SolveDaemon:
    """Serve one :class:`AsyncSolveEngine` over a unix socket."""

    def __init__(
        self,
        socket_path: Union[str, Path],
        engine: AsyncSolveEngine,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.engine = engine
        self._stop = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self.connections = 0

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Listen until a ``shutdown`` op (or cancellation)."""
        if self.socket_path.exists():
            # A previous daemon's socket; connect-refused stale files
            # are safe to reclaim, a live daemon is not.
            if await self._socket_alive():
                raise SolverError(
                    f"another daemon is already serving {self.socket_path}"
                )
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path)
        )
        try:
            async with self._server:
                await self._stop.wait()
        finally:
            self._server = None
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            self.engine.close()

    async def _socket_alive(self) -> bool:
        try:
            _, writer = await asyncio.open_unix_connection(
                path=str(self.socket_path)
            )
        except OSError:
            return False
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
        return True

    def request_shutdown(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.connections += 1

        async def send(payload: Dict[str, Any]) -> None:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()

        try:
            line = await reader.readline()
            if not line.strip():
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                await send({"event": "error", "error": f"bad JSON: {exc}"})
                return
            op = request.get("op")
            if op == "solve":
                await self._handle_solve(request, send)
            elif op == "ping":
                await send(
                    {
                        "event": "pong",
                        "version": PROTOCOL_VERSION,
                        "stats": self.engine.stats(),
                    }
                )
            elif op == "stats":
                await send({"event": "stats", "stats": self.engine.stats()})
            elif op == "cancel":
                case_id = str(request.get("case_id", ""))
                await send(
                    {
                        "event": "cancel",
                        "case_id": case_id,
                        "cancelled": self.engine.cancel(case_id),
                    }
                )
            elif op == "shutdown":
                await send({"event": "shutdown"})
                self.request_shutdown()
            else:
                await send(
                    {"event": "error", "error": f"unknown op {op!r}"}
                )
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def _handle_solve(self, request: Dict[str, Any], send) -> None:
        try:
            raw_cases = request.get("cases")
            if not isinstance(raw_cases, list) or not raw_cases:
                raise SolverError("'cases' must be a non-empty list")
            items = [
                parse_case(case, index)
                for index, case in enumerate(raw_cases)
            ]
            overrides: Dict[str, Any] = {
                key: request[key]
                for key in SOLVE_OVERRIDES
                if request.get(key) is not None
            }
            if "members" in overrides:
                overrides["members"] = tuple(
                    str(m) for m in overrides["members"]
                )
        except (ReproError, ValueError, TypeError) as exc:
            await send({"event": "error", "error": str(exc)})
            return

        include_timing = bool(request.get("include_timing", True))
        done = 0
        try:
            async for event in self.engine.stream(items, **overrides):
                await send(event.as_dict(include_timing=include_timing))
                if event.terminal:
                    done += 1
        except ReproError as exc:
            await send({"event": "error", "error": str(exc)})
            return
        await send(
            {
                "event": "batch_done",
                "count": len(items),
                "completed": done,
            }
        )


async def serve(
    socket_path: Union[str, Path], **engine_options: Any
) -> None:
    """Build an engine and serve it until shutdown (asyncio entry)."""
    daemon = SolveDaemon(socket_path, AsyncSolveEngine(**engine_options))
    await daemon.run()


def run_daemon(
    socket_path: Union[str, Path], **engine_options: Any
) -> int:
    """Blocking daemon entry point used by ``python -m repro serve``."""
    try:
        asyncio.run(serve(socket_path, **engine_options))
    except KeyboardInterrupt:
        pass
    return 0


def default_socket_path() -> str:
    """Per-user default socket location (overridable via ``--socket``)."""
    runtime = os.environ.get("XDG_RUNTIME_DIR") or "/tmp"
    return str(Path(runtime) / f"repro-solve-{os.getuid()}.sock")
