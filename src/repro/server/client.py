"""Synchronous client for the solve daemon/gateway JSON-lines protocol.

Deliberately plain ``socket`` + blocking reads: the client side of
``python -m repro submit`` is a short-lived CLI (or a test fixture)
that wants to print events as they arrive — an asyncio reactor buys it
nothing.  Each request opens one connection; the server closes the
connection when the response stream ends, so iteration terminates
naturally without a sentinel.

Addresses name either front:

* a filesystem path (``str`` or ``Path``) — the unix-socket daemon;
* ``"tcp://host:port"`` or a ``(host, port)`` tuple — the TCP gateway.

Tenancy fields ride along as request options: ``tenant``, ``key``, and
``priority`` are forwarded verbatim, and a gateway rejection surfaces
as a :class:`DaemonError` carrying the machine-readable ``code`` and
``retry_after`` back-off hint.

Fault tolerance is opt-in per call: pass a :class:`RetryPolicy` to
:func:`submit` / :func:`request_once` and the client retries transient
failures (connection refused/reset, read timeouts, admission
rejections) with capped exponential backoff + jitter, honoring the
server's ``retry_after`` hint as a floor.  A solve stream that dies
mid-flight reconnects and *resumes*: only the cases that never reached
a terminal event are re-submitted — safe because solves are
deterministic and content-addressed, and guarded by a content hash
recorded at first submission (a mutated matrix refuses to re-submit).
See ``docs/failure-semantics.md`` for the full failure-class table.
"""

from __future__ import annotations

import hashlib
import json
import random
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError

Address = Union[str, Path, Tuple[str, int]]

TCP_SCHEME = "tcp://"

TERMINAL_CLIENT_EVENTS = ("done", "cancelled", "failed")
"""Event kinds that end one case's stream (mirror of the engine's)."""

RETRYABLE_CODES = frozenset(
    {"saturated", "tenant_saturated", "quota_exhausted"}
)
"""Server rejection codes that describe *transient* pressure — these
carry a ``retry_after`` hint and clear on their own.  ``denied`` and
``unknown_tenant`` are permanent and never retried."""


class DaemonError(SolverError):
    """The server answered with an ``error`` event.

    ``code`` and ``retry_after`` mirror the structured rejection events
    of :mod:`repro.server.tenancy`; both are ``None`` for plain errors.
    """

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after

    @classmethod
    def from_event(cls, payload: Dict[str, Any]) -> "DaemonError":
        return cls(
            payload.get("error", "unknown server error"),
            code=payload.get("code"),
            retry_after=payload.get("retry_after"),
        )

    @property
    def transient(self) -> bool:
        """Would waiting and resubmitting plausibly succeed?"""
        return self.code in RETRYABLE_CODES


class ConnectFailed(SolverError):
    """Could not reach the server at all (refused / missing socket)."""


class StreamInterrupted(SolverError):
    """The connection died before the stream's ``batch_done`` line."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter for transient failures.

    ``max_attempts`` counts connections, not sleeps: the default 4
    means one initial try plus up to three retries.  Backoff for retry
    *n* (1-based) is ``base_delay * multiplier**(n-1)`` capped at
    ``max_delay``; a server ``retry_after`` hint raises (never lowers)
    the wait, because the server knows its queue better than any
    client-side curve.  Jitter then stretches the wait by up to
    ``jitter`` (a fraction), decorrelating clients that got rejected by
    the same saturation spike — set ``jitter=0`` (or ``seed``) in tests
    that assert exact sleeps.

    The policy only *decides*; sleeping is done by ``sleep`` so tests
    inject a recorder instead of wall-clock waiting.
    """

    max_attempts: int = 4
    base_delay: float = 0.1
    max_delay: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: Optional[int] = None
    sleep: Any = time.sleep

    def backoff(
        self, attempt: int, retry_after: Optional[float] = None
    ) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise SolverError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        if self.jitter > 0.0:
            rng = random.Random(
                None if self.seed is None else self.seed * 7919 + attempt
            )
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def retryable(self, exc: BaseException) -> bool:
        """Is this failure worth another attempt at all?"""
        if isinstance(exc, DaemonError):
            return exc.transient
        if isinstance(exc, (ConnectFailed, StreamInterrupted)):
            return True
        return isinstance(exc, (OSError, socket.timeout))

    def pause(
        self, attempt: int, retry_after: Optional[float] = None
    ) -> float:
        """Sleep the backoff for ``attempt`` and report what was slept."""
        delay = self.backoff(attempt, retry_after)
        self.sleep(delay)
        return delay


def case_fingerprint(case_id: str, matrix: BinaryMatrix) -> str:
    """Content hash of one case — the idempotency key for re-submits.

    A resumed stream re-submits only cases whose content still hashes
    to what was originally sent; anything mutated in between is refused
    rather than silently solved as a different instance.
    """
    blob = json.dumps(
        {
            "case_id": case_id,
            "row_masks": list(matrix.row_masks),
            "num_cols": matrix.num_cols,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _connect(address: Address, timeout: Optional[float]) -> socket.socket:
    """Open a blocking connection to either front."""
    if isinstance(address, tuple):
        host, port = address
        return socket.create_connection(
            (str(host), int(port)), timeout=timeout
        )
    text = str(address)
    if text.startswith(TCP_SCHEME):
        rest = text[len(TCP_SCHEME):]
        host, _, port_text = rest.rpartition(":")
        if not host or not port_text.isdigit():
            raise SolverError(
                f"bad TCP address {text!r} (expected tcp://host:port)"
            )
        return socket.create_connection(
            (host, int(port_text)), timeout=timeout
        )
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(text)
    except OSError:
        sock.close()
        raise
    return sock


def stream_request(
    address: Address,
    request: Dict[str, Any],
    *,
    timeout: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Send one request; yield each JSON-line response as it arrives.

    ``timeout`` bounds each blocking read (not the whole stream): a
    server that stops talking raises ``socket.timeout`` instead of
    hanging the client forever.
    """
    try:
        sock = _connect(address, timeout)
    except OSError as exc:
        raise ConnectFailed(
            f"cannot reach solve server at {address}: {exc} "
            "(is `python -m repro serve` or `python -m repro gateway` "
            "running?)"
        ) from exc
    with sock:
        sock.sendall(json.dumps(request).encode() + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SolverError(
                        f"server sent malformed JSON: {line[:200]!r}"
                    ) from exc
                yield payload


def request_once(
    address: Address,
    request: Dict[str, Any],
    *,
    timeout: Optional[float] = None,
    retry: Optional["RetryPolicy"] = None,
) -> Dict[str, Any]:
    """Single-line ops (``ping``/``stats``/``metrics``/``health``/...).

    With a ``retry`` policy, transient failures are retried — but only
    for read-only ops: ``cancel`` and ``shutdown`` are not idempotent
    from the server's point of view and are never auto-resent.
    """
    idempotent = request.get("op") in (
        "ping",
        "stats",
        "metrics",
        "health",
    )
    attempt = 0
    while True:
        try:
            for payload in stream_request(
                address, request, timeout=timeout
            ):
                if payload.get("event") == "error":
                    raise DaemonError.from_event(payload)
                return payload
            raise StreamInterrupted(
                "server closed the connection without answering"
            )
        except Exception as exc:
            attempt += 1
            if (
                retry is None
                or not idempotent
                or attempt >= retry.max_attempts
                or not retry.retryable(exc)
            ):
                raise
            retry.pause(attempt, getattr(exc, "retry_after", None))


def fetch_metrics(
    address: Address, *, timeout: Optional[float] = None
) -> Dict[str, Any]:
    """The shared stats surface: queue depth, tenants, wins, cache."""
    return request_once(address, {"op": "metrics"}, timeout=timeout)[
        "metrics"
    ]


def matrix_to_case(
    case_id: str, matrix: BinaryMatrix
) -> Dict[str, Any]:
    """Wire form of one instance (compact mask encoding)."""
    return {
        "case_id": case_id,
        "row_masks": list(matrix.row_masks),
        "num_cols": matrix.num_cols,
    }


def _submit_once(
    address: Address,
    cases: Sequence[Tuple[str, BinaryMatrix]],
    timeout: Optional[float],
    options: Dict[str, Any],
) -> Iterator[Dict[str, Any]]:
    request: Dict[str, Any] = {
        "op": "solve",
        "cases": [
            matrix_to_case(case_id, matrix) for case_id, matrix in cases
        ],
    }
    request.update(options)
    for payload in stream_request(address, request, timeout=timeout):
        if payload.get("event") == "error":
            raise DaemonError.from_event(payload)
        yield payload


def submit(
    address: Address,
    cases: Sequence[Tuple[str, BinaryMatrix]],
    *,
    timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    **options: Any,
) -> Iterator[Dict[str, Any]]:
    """Stream solve events for ``(case_id, matrix)`` pairs.

    ``options`` are the request-level fields the server accepts: the
    engine overrides (``members``, ``seed``, ``budget_per_instance``,
    ``budget_per_member``, ``stop_when_optimal``, ``race``) plus the
    tenancy fields (``tenant``, ``key``, ``priority``).  Error events
    raise :class:`DaemonError` (with ``retry_after`` populated on
    admission rejections); the terminating ``batch_done`` line is
    yielded last so callers can read the completion counts.

    With a :class:`RetryPolicy`, transient failures — connection
    refused, admission rejections carrying ``retry_after``, and
    mid-stream disconnects — are retried with backoff.  A broken
    stream *resumes*: cases that already reached a terminal event are
    not re-submitted (their events are never duplicated downstream),
    and re-submission is guarded by :func:`case_fingerprint` so a
    matrix mutated between attempts raises instead of being silently
    re-solved as different work.  Each reconnect is announced with a
    client-side ``{"event": "client_retry", ...}`` line, and the final
    ``batch_done`` is synthesized with whole-batch counts plus the
    number of ``retries`` taken.
    """
    if retry is None:
        yield from _submit_once(address, cases, timeout, options)
        return

    ordered = [(str(case_id), matrix) for case_id, matrix in cases]
    fingerprints = {
        case_id: case_fingerprint(case_id, matrix)
        for case_id, matrix in ordered
    }
    remaining: Dict[str, BinaryMatrix] = {
        case_id: matrix for case_id, matrix in ordered
    }
    if len(remaining) != len(ordered):
        raise SolverError(
            "resumable submit needs unique case ids "
            "(duplicates cannot be resumed unambiguously)"
        )
    tenant = options.get("tenant")
    completed = 0
    attempt = 0
    while True:
        batch: List[Tuple[str, BinaryMatrix]] = [
            (case_id, matrix)
            for case_id, matrix in ordered
            if case_id in remaining
        ]
        for case_id, matrix in batch:
            if case_fingerprint(case_id, matrix) != fingerprints[case_id]:
                raise SolverError(
                    f"case {case_id!r} changed since its first "
                    "submission; refusing a non-idempotent re-submit"
                )
        saw_batch_done = False
        failure: Optional[BaseException] = None
        try:
            for payload in _submit_once(address, batch, timeout, options):
                event = payload.get("event")
                if event == "batch_done":
                    saw_batch_done = True
                    tenant = payload.get("tenant", tenant)
                    continue  # synthesized below with whole-batch counts
                case_id = payload.get("case_id")
                if event in TERMINAL_CLIENT_EVENTS and case_id is not None:
                    if case_id not in remaining:
                        continue  # replay of an already-delivered case
                    del remaining[case_id]
                    completed += 1
                yield payload
        except Exception as exc:
            failure = exc
        if failure is None and (saw_batch_done or not remaining):
            done_line: Dict[str, Any] = {
                "event": "batch_done",
                "count": len(ordered),
                "completed": completed,
                "retries": attempt,
            }
            if tenant is not None:
                done_line["tenant"] = tenant
            yield done_line
            return
        if failure is None:
            # Stream ended cleanly but cases are missing — the server
            # died between events and its socket closed without a
            # batch_done. Same recovery as an abrupt disconnect.
            failure = StreamInterrupted(
                f"stream ended with {len(remaining)} case(s) unresolved"
            )
        attempt += 1
        if attempt >= retry.max_attempts or not retry.retryable(failure):
            raise failure
        slept = retry.pause(
            attempt, getattr(failure, "retry_after", None)
        )
        yield {
            "event": "client_retry",
            "attempt": attempt,
            "slept": slept,
            "remaining": len(remaining),
            "reason": f"{type(failure).__name__}: {failure}",
        }


def collect(
    address: Address,
    cases: Sequence[Tuple[str, BinaryMatrix]],
    *,
    timeout: Optional[float] = None,
    **options: Any,
) -> List[Dict[str, Any]]:
    """Just the ``done`` provenance records, in completion order."""
    records: List[Dict[str, Any]] = []
    for payload in submit(address, cases, timeout=timeout, **options):
        if payload.get("event") == "done":
            records.append(payload)
    return records
