"""Synchronous client for the solve daemon's JSON-lines protocol.

Deliberately plain ``socket`` + blocking reads: the client side of
``python -m repro submit`` is a short-lived CLI (or a test fixture)
that wants to print events as they arrive — an asyncio reactor buys it
nothing.  Each request opens one connection; the daemon closes the
connection when the response stream ends, so iteration terminates
naturally without a sentinel.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError


class DaemonError(SolverError):
    """The daemon answered with an ``error`` event."""


def stream_request(
    socket_path: Union[str, Path],
    request: Dict[str, Any],
    *,
    timeout: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Send one request; yield each JSON-line response as it arrives.

    ``timeout`` bounds each blocking read (not the whole stream): a
    daemon that stops talking raises ``socket.timeout`` instead of
    hanging the client forever.
    """
    path = str(socket_path)
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        try:
            sock.connect(path)
        except OSError as exc:
            raise SolverError(
                f"cannot reach solve daemon at {path}: {exc} "
                "(is `python -m repro serve` running?)"
            ) from exc
        sock.sendall(json.dumps(request).encode() + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SolverError(
                        f"daemon sent malformed JSON: {line[:200]!r}"
                    ) from exc
                yield payload


def request_once(
    socket_path: Union[str, Path],
    request: Dict[str, Any],
    *,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Single-line ops (``ping`` / ``stats`` / ``cancel`` / ``shutdown``)."""
    for payload in stream_request(socket_path, request, timeout=timeout):
        if payload.get("event") == "error":
            raise DaemonError(payload.get("error", "unknown daemon error"))
        return payload
    raise SolverError("daemon closed the connection without answering")


def matrix_to_case(
    case_id: str, matrix: BinaryMatrix
) -> Dict[str, Any]:
    """Wire form of one instance (compact mask encoding)."""
    return {
        "case_id": case_id,
        "row_masks": list(matrix.row_masks),
        "num_cols": matrix.num_cols,
    }


def submit(
    socket_path: Union[str, Path],
    cases: Sequence[Tuple[str, BinaryMatrix]],
    *,
    timeout: Optional[float] = None,
    **options: Any,
) -> Iterator[Dict[str, Any]]:
    """Stream solve events for ``(case_id, matrix)`` pairs.

    ``options`` are the request-level overrides the daemon accepts
    (``members``, ``seed``, ``budget_per_instance``,
    ``budget_per_member``, ``stop_when_optimal``, ``race``).  Error
    events raise :class:`DaemonError`; the terminating ``batch_done``
    line is yielded last so callers can read the completion counts.
    """
    request: Dict[str, Any] = {
        "op": "solve",
        "cases": [
            matrix_to_case(case_id, matrix) for case_id, matrix in cases
        ],
    }
    request.update(options)
    for payload in stream_request(socket_path, request, timeout=timeout):
        if payload.get("event") == "error":
            raise DaemonError(payload.get("error", "unknown daemon error"))
        yield payload


def collect(
    socket_path: Union[str, Path],
    cases: Sequence[Tuple[str, BinaryMatrix]],
    *,
    timeout: Optional[float] = None,
    **options: Any,
) -> List[Dict[str, Any]]:
    """Just the ``done`` provenance records, in completion order."""
    records: List[Dict[str, Any]] = []
    for payload in submit(socket_path, cases, timeout=timeout, **options):
        if payload.get("event") == "done":
            records.append(payload)
    return records
