"""Synchronous client for the solve daemon/gateway JSON-lines protocol.

Deliberately plain ``socket`` + blocking reads: the client side of
``python -m repro submit`` is a short-lived CLI (or a test fixture)
that wants to print events as they arrive — an asyncio reactor buys it
nothing.  Each request opens one connection; the server closes the
connection when the response stream ends, so iteration terminates
naturally without a sentinel.

Addresses name either front:

* a filesystem path (``str`` or ``Path``) — the unix-socket daemon;
* ``"tcp://host:port"`` or a ``(host, port)`` tuple — the TCP gateway.

Tenancy fields ride along as request options: ``tenant``, ``key``, and
``priority`` are forwarded verbatim, and a gateway rejection surfaces
as a :class:`DaemonError` carrying the machine-readable ``code`` and
``retry_after`` back-off hint.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError

Address = Union[str, Path, Tuple[str, int]]

TCP_SCHEME = "tcp://"


class DaemonError(SolverError):
    """The server answered with an ``error`` event.

    ``code`` and ``retry_after`` mirror the structured rejection events
    of :mod:`repro.server.tenancy`; both are ``None`` for plain errors.
    """

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after

    @classmethod
    def from_event(cls, payload: Dict[str, Any]) -> "DaemonError":
        return cls(
            payload.get("error", "unknown server error"),
            code=payload.get("code"),
            retry_after=payload.get("retry_after"),
        )


def _connect(address: Address, timeout: Optional[float]) -> socket.socket:
    """Open a blocking connection to either front."""
    if isinstance(address, tuple):
        host, port = address
        return socket.create_connection(
            (str(host), int(port)), timeout=timeout
        )
    text = str(address)
    if text.startswith(TCP_SCHEME):
        rest = text[len(TCP_SCHEME):]
        host, _, port_text = rest.rpartition(":")
        if not host or not port_text.isdigit():
            raise SolverError(
                f"bad TCP address {text!r} (expected tcp://host:port)"
            )
        return socket.create_connection(
            (host, int(port_text)), timeout=timeout
        )
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(text)
    except OSError:
        sock.close()
        raise
    return sock


def stream_request(
    address: Address,
    request: Dict[str, Any],
    *,
    timeout: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Send one request; yield each JSON-line response as it arrives.

    ``timeout`` bounds each blocking read (not the whole stream): a
    server that stops talking raises ``socket.timeout`` instead of
    hanging the client forever.
    """
    try:
        sock = _connect(address, timeout)
    except OSError as exc:
        raise SolverError(
            f"cannot reach solve server at {address}: {exc} "
            "(is `python -m repro serve` or `python -m repro gateway` "
            "running?)"
        ) from exc
    with sock:
        sock.sendall(json.dumps(request).encode() + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SolverError(
                        f"server sent malformed JSON: {line[:200]!r}"
                    ) from exc
                yield payload


def request_once(
    address: Address,
    request: Dict[str, Any],
    *,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Single-line ops (``ping``/``stats``/``metrics``/``cancel``/...)."""
    for payload in stream_request(address, request, timeout=timeout):
        if payload.get("event") == "error":
            raise DaemonError.from_event(payload)
        return payload
    raise SolverError("server closed the connection without answering")


def fetch_metrics(
    address: Address, *, timeout: Optional[float] = None
) -> Dict[str, Any]:
    """The shared stats surface: queue depth, tenants, wins, cache."""
    return request_once(address, {"op": "metrics"}, timeout=timeout)[
        "metrics"
    ]


def matrix_to_case(
    case_id: str, matrix: BinaryMatrix
) -> Dict[str, Any]:
    """Wire form of one instance (compact mask encoding)."""
    return {
        "case_id": case_id,
        "row_masks": list(matrix.row_masks),
        "num_cols": matrix.num_cols,
    }


def submit(
    address: Address,
    cases: Sequence[Tuple[str, BinaryMatrix]],
    *,
    timeout: Optional[float] = None,
    **options: Any,
) -> Iterator[Dict[str, Any]]:
    """Stream solve events for ``(case_id, matrix)`` pairs.

    ``options`` are the request-level fields the server accepts: the
    engine overrides (``members``, ``seed``, ``budget_per_instance``,
    ``budget_per_member``, ``stop_when_optimal``, ``race``) plus the
    tenancy fields (``tenant``, ``key``, ``priority``).  Error events
    raise :class:`DaemonError` (with ``retry_after`` populated on
    admission rejections); the terminating ``batch_done`` line is
    yielded last so callers can read the completion counts.
    """
    request: Dict[str, Any] = {
        "op": "solve",
        "cases": [
            matrix_to_case(case_id, matrix) for case_id, matrix in cases
        ],
    }
    request.update(options)
    for payload in stream_request(address, request, timeout=timeout):
        if payload.get("event") == "error":
            raise DaemonError.from_event(payload)
        yield payload


def collect(
    address: Address,
    cases: Sequence[Tuple[str, BinaryMatrix]],
    *,
    timeout: Optional[float] = None,
    **options: Any,
) -> List[Dict[str, Any]]:
    """Just the ``done`` provenance records, in completion order."""
    records: List[Dict[str, Any]] = []
    for payload in submit(address, cases, timeout=timeout, **options):
        if payload.get("event") == "done":
            records.append(payload)
    return records
