"""``python -m repro cache`` — stats / gc / prewarm for sharded stores.

The cache subcommand is the operational front door for the bounded
store (``repro.server.shards`` + ``repro.server.store_gc``):

    python -m repro cache stats DIR [--json]
    python -m repro cache gc DIR [--max-bytes N] [--max-entries N]
                                 [--ttl-seconds S] [--json]
    python -m repro cache prewarm DIR [--profile P] [--families F,G]
                                      [--members M] [--workers N]

``stats`` prints the index-backed inventory (entries, bytes, limits,
pending GC journal) and exits 0 whenever the store is openable — the
chaos suite uses it as the "store still servable" probe after killing
GC at every journal state.  ``gc`` runs a full journaled GC/compaction
pass, persisting any cap flags it was given so later openers enforce
the same policy.  ``prewarm`` bulk-solves a corpus profile through
``solve_batch`` into the store, so a fresh deployment starts with a
warm cache instead of a thundering herd of cold solves.
"""

from __future__ import annotations

import argparse
import json


def _limits(args: argparse.Namespace):
    from repro.server.shards import StoreLimits

    if (
        args.max_bytes is None
        and args.max_entries is None
        and getattr(args, "ttl_seconds", None) is None
    ):
        return None
    return StoreLimits(
        max_bytes=args.max_bytes,
        max_entries=args.max_entries,
        ttl_seconds=args.ttl_seconds,
    )


def _open_tier(args: argparse.Namespace, limits=None):
    from repro.server.shards import ShardedDiskTier

    return ShardedDiskTier(args.store, limits=limits)


def cmd_cache_stats(args: argparse.Namespace) -> int:
    tier = _open_tier(args)
    index = tier.load_index(verify=True)
    shards = sorted(tier.root.glob("shard-*.json"))
    corrupt = sorted(tier.root.glob("*.corrupt-*"))
    payload = {
        "store": str(tier.root),
        "entries": tier.entry_count(),
        "bytes_used": tier.bytes_used(),
        "shards": len(shards),
        "quarantined_files": len(corrupt),
        "gc_journal_pending": tier.journal_path().exists(),
        "limits": tier.limits.as_dict(),
        "legacy_entries": sum(
            1
            for meta in index.get("entries", {}).values()
            if meta.get("v") is None
        ),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    from repro.utils.tables import format_table

    limits = tier.limits
    rows = [
        ["entries", payload["entries"],
         "-" if limits.max_entries is None else limits.max_entries],
        ["bytes", payload["bytes_used"],
         "-" if limits.max_bytes is None else limits.max_bytes],
        ["shard files", payload["shards"], "-"],
        ["legacy (unstamped) entries", payload["legacy_entries"], "-"],
        ["quarantined files", payload["quarantined_files"], "-"],
        ["ttl (seconds)", "-",
         "-" if limits.ttl_seconds is None else limits.ttl_seconds],
    ]
    print(
        format_table(
            ["", "current", "limit"],
            rows,
            title=f"cache store {tier.root}",
        )
    )
    if payload["gc_journal_pending"]:
        print(
            "note: a GC journal is pending (an interrupted pass will "
            "resume on the next open or `repro cache gc`)"
        )
    return 0


def cmd_cache_gc(args: argparse.Namespace) -> int:
    from repro.server.store_gc import run_gc

    tier = _open_tier(args, limits=_limits(args))
    report = run_gc(tier, block=True)
    payload = report.as_dict()
    payload["store"] = str(tier.root)
    payload["limits"] = tier.limits.as_dict()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"gc {tier.root}: {payload['evicted']} evicted "
            f"({payload['expired']} past TTL), "
            f"{payload['removed_tmp']} orphan tmp, "
            f"{payload['removed_corrupt']} aged quarantine, "
            f"{payload['removed_empty_shards']} empty shard(s) removed"
            + (" [resumed an interrupted pass]" if report.resumed else "")
        )
        print(
            f"now: {payload['entries_after']} entries, "
            f"{payload['bytes_after']} bytes "
            f"(limits: {tier.limits.as_dict()})"
        )
    over = tier.limits.over_caps(tier.bytes_used(), tier.entry_count())
    return 1 if over else 0


def cmd_cache_prewarm(args: argparse.Namespace) -> int:
    from repro.corpus.registry import build_corpus
    from repro.service.batch import solve_batch
    from repro.service.cache import ResultCache

    families = (
        [name for name in args.families.split(",") if name]
        if args.families
        else None
    )
    members = tuple(spec for spec in args.members.split(",") if spec)
    instances = build_corpus(
        families, profile=args.profile, seed=args.seed
    )
    cache = ResultCache.sharded(
        args.store,
        max_bytes=args.max_bytes,
        max_entries=args.max_entries,
        ttl_seconds=args.ttl_seconds,
    )
    try:
        records = solve_batch(
            instances,
            members=members,
            seed=args.seed,
            workers=args.workers,
            cache=cache,
            budget_per_instance=args.budget,
        )
    finally:
        cache.flush()
    stats = cache.refresh_stats()
    hits = sum(1 for record in records if record.from_cache)
    print(
        f"prewarmed {len(records)} instances into {args.store} "
        f"(profile {args.profile}, members: {', '.join(members)}): "
        f"{hits} already cached, {len(records) - hits} solved fresh"
    )
    print(
        f"store now ~{stats.bytes_used} bytes"
        + (
            f", {stats.store_evictions} evicted by caps"
            if stats.store_evictions
            else ""
        )
    )
    return 0


def add_cache_parser(sub) -> None:
    """Attach the ``cache`` command tree to the top-level parser."""
    parser = sub.add_parser(
        "cache",
        help="inspect, collect, and prewarm sharded result-cache stores",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    tree = parser.add_subparsers(dest="cache_command", required=True)

    def store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "store", help="sharded cache directory (as given to --cache-dir)"
        )

    def limit_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--max-bytes", type=int, default=None,
            help="byte cap for the store (persisted in store-config.json)",
        )
        p.add_argument(
            "--max-entries", type=int, default=None,
            help="entry-count cap for the store (persisted)",
        )
        p.add_argument(
            "--ttl-seconds", type=float, default=None,
            help="age past which entries expire (persisted)",
        )

    p_stats = tree.add_parser(
        "stats", help="index-backed inventory of a store (exit 0 = servable)"
    )
    store_arg(p_stats)
    p_stats.add_argument("--json", action="store_true")
    p_stats.set_defaults(func=cmd_cache_stats)

    p_gc = tree.add_parser(
        "gc",
        help="run a journaled GC/compaction pass (exit 1 if still over cap)",
    )
    store_arg(p_gc)
    limit_flags(p_gc)
    p_gc.add_argument("--json", action="store_true")
    p_gc.set_defaults(func=cmd_cache_gc)

    p_warm = tree.add_parser(
        "prewarm",
        help="bulk-solve a corpus profile into the store before deployment",
    )
    store_arg(p_warm)
    limit_flags(p_warm)
    p_warm.add_argument(
        "--profile", default="smoke",
        help="corpus size profile to solve (default smoke)",
    )
    p_warm.add_argument(
        "--families", default=None,
        help="comma-separated family subset (default: all registered)",
    )
    p_warm.add_argument(
        "--members", default="trivial,packing:32,sap",
        help="comma-separated portfolio members",
    )
    p_warm.add_argument("--workers", type=int, default=1)
    p_warm.add_argument("--seed", type=int, default=2024)
    p_warm.add_argument(
        "--budget", type=float, default=None,
        help="wall-clock budget per instance (seconds)",
    )
    p_warm.set_defaults(func=cmd_cache_prewarm)


__all__ = ["add_cache_parser"]
