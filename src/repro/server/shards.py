"""Hash-prefix-sharded disk tier for the result cache.

The single-file JSON tier rewrites the whole cache on every flush, so
two batch runners sharing one cache file on a host would silently drop
each other's entries (last writer wins).  This tier spreads entries over
``16**prefix_len`` shard files keyed by the leading hex digits of the
content hash, and makes every shard update a *merge* under an exclusive
file lock followed by an atomic tempfile + ``os.replace`` — concurrent
writers interleave per shard instead of clobbering each other, and a
crash mid-write can never leave a torn shard behind.

Locking uses ``fcntl.flock`` on a sidecar ``.lock`` file (never the
shard itself: ``os.replace`` swaps inodes, and a lock on a replaced
inode protects nothing).  On platforms without ``fcntl`` the tier
degrades to lock-free atomic replaces — still torn-proof, but
concurrent merges may then lose races; the repo only targets POSIX.

A :class:`ShardedDiskTier` pointed at an existing single-file JSON
cache migrates it in place on first open: the file's entries are
resharded into a directory of the same name.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Set, Union

from repro.core.exceptions import SolverError
from repro.service import faults
from repro.utils.fileio import atomic_write_json, locked_file

SHARD_FORMAT_VERSION = 1
SHARD_TYPE = "portfolio_cache_shard"
SINGLE_FILE_TYPE = "portfolio_cache"

logger = logging.getLogger(__name__)

_QUARANTINE_LOGGED: Set[str] = set()
"""Paths already logged this process — a corrupt shard hit by every
request must not turn the log into a firehose."""


def quarantine_file(path: Path, reason: str) -> Optional[Path]:
    """Move a corrupt cache file aside and log it (once per process).

    The file is renamed to ``<name>.corrupt-<unix-ts>`` in place, so
    the bad bytes stay available for a postmortem while readers start
    cold — a torn shard costs re-solving its entries, never the solve
    itself.  Returns the quarantine path, or ``None`` if the rename
    lost a race (another process already moved it).
    """
    target = path.with_name(f"{path.name}.corrupt-{int(time.time())}")
    try:
        os.replace(path, target)
    except OSError:
        return None  # already quarantined (or deleted) by someone else
    key = str(path)
    if key not in _QUARANTINE_LOGGED:
        _QUARANTINE_LOGGED.add(key)
        logger.warning(
            "quarantined corrupt cache file %s -> %s (%s); "
            "continuing with a cold shard",
            path,
            target.name,
            reason,
        )
    return target


class ShardedDiskTier:
    """Disk storage for :class:`repro.service.cache.ResultCache`.

    Implements the pluggable-storage protocol (``load`` / ``get`` /
    ``store`` / ``location``): ``load`` returns nothing so the memory
    tier starts cold and reads through per key, ``get`` fetches one
    entry from its shard, and ``store`` merges dirty entries into their
    shards under per-shard locks.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        prefix_len: int = 2,
    ) -> None:
        if not 1 <= prefix_len <= 4:
            raise SolverError(
                f"shard prefix length must be in [1, 4], got {prefix_len}"
            )
        self.root = Path(root)
        self.prefix_len = prefix_len
        self.quarantined = 0
        self._open()

    # -- layout --------------------------------------------------------
    @property
    def location(self) -> Path:
        return self.root

    def shard_path(self, key: str) -> Path:
        prefix = key[: self.prefix_len].lower()
        if len(prefix) < self.prefix_len or any(
            c not in "0123456789abcdef" for c in prefix
        ):
            raise SolverError(f"cache key {key!r} is not a hex digest")
        return self.root / f"shard-{prefix}.json"

    def _lock_path(self, shard: Path) -> Path:
        return shard.with_suffix(".lock")

    def _global_lock(self) -> Path:
        return self.root.parent / f"{self.root.name}.open.lock"

    # -- open / migrate ------------------------------------------------
    def _open(self) -> None:
        # The global lock serializes first-open races: two processes
        # may otherwise both see the single-file layout and fight over
        # the migration.
        with locked_file(self._global_lock()):
            sidecar = self.root.with_name(self.root.name + ".migrating")
            if self.root.is_file() or sidecar.exists():
                self._migrate_single_file()
            self.root.mkdir(parents=True, exist_ok=True)

    def _migrate_single_file(self) -> None:
        """Reshard a legacy single-file cache found at :attr:`root`.

        The legacy file is renamed aside first and deleted only after
        every shard write landed, so a crash mid-migration leaves
        either the sidecar or the shards — never neither.  (A leftover
        sidecar from a crashed migration is resumed on the next open.)
        """
        path = self.root
        sidecar = path.with_name(path.name + ".migrating")
        source = path if path.is_file() else sidecar
        try:
            with open(source) as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            raise SolverError(
                f"cannot migrate cache {source}: {exc}"
            ) from exc
        if payload.get("type") != SINGLE_FILE_TYPE:
            raise SolverError(
                f"{source} is not a portfolio cache "
                f"(type={payload.get('type')!r}); refusing to migrate"
            )
        if source is path:
            os.replace(path, sidecar)
        entries = payload.get("entries", {})
        self.root.mkdir(parents=True, exist_ok=True)
        self._merge(entries)
        sidecar.unlink()

    # -- shard IO ------------------------------------------------------
    def _read_shard(self, shard: Path) -> Dict[str, Dict[str, Any]]:
        """One shard's entries; a corrupt shard is quarantined, not fatal.

        Truncated/torn JSON, a non-shard payload, or a malformed
        ``entries`` field all mean the file is damaged (atomic writes
        make a *partial* shard impossible, but disks, manual edits, and
        chaos tests still produce garbage) — the bad file is moved
        aside via :func:`quarantine_file` and the shard reads cold.  A
        shard from a *newer* format version is healthy data this build
        can't parse: that still raises rather than destroying it.
        """
        try:
            with open(shard) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return {}
        except json.JSONDecodeError as exc:
            self._quarantine(shard, f"bad JSON: {exc}")
            return {}
        except OSError as exc:
            raise SolverError(f"cannot load cache shard {shard}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("type") != SHARD_TYPE:
            kind = (
                payload.get("type") if isinstance(payload, dict) else None
            )
            self._quarantine(shard, f"not a cache shard (type={kind!r})")
            return {}
        if payload.get("version", 0) > SHARD_FORMAT_VERSION:
            raise SolverError(
                f"cache shard {shard} has version {payload['version']}, "
                f"newer than supported {SHARD_FORMAT_VERSION}"
            )
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            self._quarantine(
                shard, f"entries is {type(entries).__name__}, not an object"
            )
            return {}
        return entries

    def _quarantine(self, shard: Path, reason: str) -> None:
        if quarantine_file(shard, reason) is not None:
            self.quarantined += 1

    def _write_shard(
        self, shard: Path, entries: Dict[str, Dict[str, Any]]
    ) -> None:
        atomic_write_json(
            shard,
            {
                "version": SHARD_FORMAT_VERSION,
                "type": SHARD_TYPE,
                "entries": entries,
            },
        )
        # Chaos seam: truncate what was just written so the next read
        # exercises the quarantine path (one-shot, self-disarming).
        if faults.should_corrupt_shard_write():
            with open(shard, "w") as stream:
                stream.write('{"version": 1, "type": "portfolio_')

    def _merge(self, entries: Mapping[str, Dict[str, Any]]) -> None:
        by_shard: Dict[Path, Dict[str, Dict[str, Any]]] = {}
        for key, payload in entries.items():
            by_shard.setdefault(self.shard_path(key), {})[key] = payload
        for shard, fresh in sorted(by_shard.items()):
            with locked_file(self._lock_path(shard)):
                merged = self._read_shard(shard)
                merged.update(fresh)
                self._write_shard(shard, merged)

    # -- storage protocol ----------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Nothing eagerly: shards are read through per key."""
        return {}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        shard = self.shard_path(key)
        with locked_file(self._lock_path(shard)):
            return self._read_shard(shard).get(key)

    def store(
        self,
        entries: Mapping[str, Dict[str, Any]],
        dirty: Optional[Set[str]] = None,
    ) -> None:
        """Merge ``entries`` (restricted to ``dirty`` keys) into shards."""
        if dirty is not None:
            entries = {
                key: entries[key] for key in dirty if key in entries
            }
        if entries:
            self._merge(entries)

    # -- introspection -------------------------------------------------
    def keys(self) -> Set[str]:
        """Every key currently on disk (reads all shards; test/debug)."""
        found: Set[str] = set()
        for shard in sorted(self.root.glob("shard-*.json")):
            with locked_file(self._lock_path(shard)):
                found.update(self._read_shard(shard))
        return found

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return (
            f"ShardedDiskTier({str(self.root)!r}, "
            f"prefix_len={self.prefix_len})"
        )
