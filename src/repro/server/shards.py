"""Hash-prefix-sharded disk tier for the result cache.

The single-file JSON tier rewrites the whole cache on every flush, so
two batch runners sharing one cache file on a host would silently drop
each other's entries (last writer wins).  This tier spreads entries over
``16**prefix_len`` shard files keyed by the leading hex digits of the
content hash, and makes every shard update a *merge* under an exclusive
file lock followed by an atomic tempfile + ``os.replace`` — concurrent
writers interleave per shard instead of clobbering each other, and a
crash mid-write can never leave a torn shard behind.

Locking uses ``fcntl.flock`` on a sidecar ``.lock`` file (never the
shard itself: ``os.replace`` swaps inodes, and a lock on a replaced
inode protects nothing).  On platforms without ``fcntl`` the tier
degrades to lock-free atomic replaces — still torn-proof, but
concurrent merges may then lose races; the repo only targets POSIX.

A :class:`ShardedDiskTier` pointed at an existing single-file JSON
cache migrates it in place on first open: the file's entries are
resharded into a directory of the same name.

Since the cache-lifecycle work (see ``docs/cache-lifecycle.md``) the
store is also *bounded* and *self-verifying*:

* every entry carries metadata (size, created/accessed stamps, a
  content sha over the payload + the solver schema version it was
  computed under) stored next to it in the shard;
* :class:`StoreLimits` caps the store by bytes/entries and ages entries
  out by TTL — exceeding a cap on the write path triggers the journaled
  GC pass in :mod:`repro.server.store_gc`;
* a maintained index (``cache-index.json``) gives O(1) stats and cap
  accounting, with rebuild-from-shards fallback whenever it is missing,
  stale, or corrupt — the shards are always the authority;
* integrity mismatches on read are routed through the quarantine path
  (the damaged entry is moved aside and counted, never served).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Set, Tuple, Union

from repro.core.exceptions import SolverError
from repro.service import faults
from repro.service.schema import SOLVER_SCHEMA_VERSION
from repro.utils.clock import wall_now
from repro.utils.fileio import atomic_write_json, locked_file

SHARD_FORMAT_VERSION = 2
"""Version 2 added the per-entry ``meta`` map (size, stamps, integrity
hash, schema version).  Version-1 shards read fine — their entries are
*legacy*: served without integrity checks, treated as
least-recently-used, and stamped on the next rewrite."""

SHARD_TYPE = "portfolio_cache_shard"
SINGLE_FILE_TYPE = "portfolio_cache"

INDEX_NAME = "cache-index.json"
INDEX_TYPE = "portfolio_cache_index"
INDEX_FORMAT_VERSION = 1

CONFIG_NAME = "store-config.json"
CONFIG_TYPE = "portfolio_cache_store_config"
CONFIG_FORMAT_VERSION = 1

logger = logging.getLogger(__name__)

_QUARANTINE_LOGGED: Set[str] = set()
"""Paths already logged this process — a corrupt shard hit by every
request must not turn the log into a firehose."""


def quarantine_file(path: Path, reason: str) -> Optional[Path]:
    """Move a corrupt cache file aside and log it (once per process).

    The file is renamed to ``<name>.corrupt-<unix-ts>`` in place, so
    the bad bytes stay available for a postmortem while readers start
    cold — a torn shard costs re-solving its entries, never the solve
    itself.  Returns the quarantine path, or ``None`` if the rename
    lost a race (another process already moved it).
    """
    target = path.with_name(f"{path.name}.corrupt-{int(wall_now())}")
    try:
        os.replace(path, target)
    except OSError:
        return None  # already quarantined (or deleted) by someone else
    key = str(path)
    if key not in _QUARANTINE_LOGGED:
        _QUARANTINE_LOGGED.add(key)
        logger.warning(
            "quarantined corrupt cache file %s -> %s (%s); "
            "continuing with a cold shard",
            path,
            target.name,
            reason,
        )
    return target


# ----------------------------------------------------------------------
# Entry metadata and integrity
# ----------------------------------------------------------------------
def canonical_payload_bytes(payload: Dict[str, Any]) -> bytes:
    """The canonical byte form an entry is sized and hashed over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def entry_hash(blob: bytes, schema_version: int) -> str:
    """Content sha of an entry: payload bytes + solver schema version.

    Folding :data:`~repro.service.schema.SOLVER_SCHEMA_VERSION` in
    means a payload byte-identical to one computed under different
    solver semantics still fails verification — the stored ``v`` field
    records which generation the hash was taken under, so entries
    verify against *their own* era, not the reader's.
    """
    digest = hashlib.sha256(blob)
    digest.update(f"|schema={schema_version}".encode("ascii"))
    return digest.hexdigest()[:16]


def make_entry_meta(
    payload: Dict[str, Any], *, now: Optional[float] = None
) -> Dict[str, Any]:
    """Fresh metadata for a payload being written right now."""
    if now is None:
        now = wall_now()
    blob = canonical_payload_bytes(payload)
    return {
        "b": len(blob),
        "c": now,
        "a": now,
        "v": SOLVER_SCHEMA_VERSION,
        "h": entry_hash(blob, SOLVER_SCHEMA_VERSION),
    }


def verify_entry(payload: Dict[str, Any], meta: Mapping[str, Any]) -> bool:
    """Does the stored hash match the payload it sits next to?

    Legacy entries (no recorded hash) pass trivially — there is nothing
    to verify them against, and destroying them would be data loss.
    """
    recorded = meta.get("h")
    if not recorded:
        return True
    version = meta.get("v", SOLVER_SCHEMA_VERSION)
    return entry_hash(canonical_payload_bytes(payload), version) == recorded


def ttl_now() -> float:
    """The wall clock as the TTL/eviction math sees it.

    The clock-skew fault seam shifts this — simulating an NTP jump
    between the writer that stamped an entry and the process judging
    its age — without touching the stamps already on disk.
    """
    return wall_now() + faults.ttl_clock_skew()


# ----------------------------------------------------------------------
# Store limits
# ----------------------------------------------------------------------
class StoreLimits:
    """Byte/entry caps and TTL for a sharded store.

    ``max_bytes`` bounds the sum of canonical entry sizes (the payload
    bytes the store exists to hold; file framing is excluded so the cap
    is layout-independent), ``max_entries`` the entry count, and
    ``ttl_seconds`` the age past which an entry is expired — never
    served and evicted by the next GC pass.  All three are optional;
    a fully-``None`` limits object is the unbounded pre-lifecycle
    behaviour.
    """

    __slots__ = ("max_bytes", "max_entries", "ttl_seconds")

    def __init__(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        ttl_seconds: Optional[float] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise SolverError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_entries is not None and max_entries < 1:
            raise SolverError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise SolverError(
                f"ttl_seconds must be positive, got {ttl_seconds}"
            )
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds

    def enabled(self) -> bool:
        return (
            self.max_bytes is not None
            or self.max_entries is not None
            or self.ttl_seconds is not None
        )

    def expired(self, created: Optional[float], now: float) -> bool:
        """Is an entry created at ``created`` past its TTL at ``now``?

        Legacy entries (no stamp) never expire by TTL — expiring the
        whole pre-upgrade store on the first pass would be an eviction
        storm, not aging.  They do sort oldest for LRU purposes.
        """
        if self.ttl_seconds is None or not created:
            return False
        return now - created > self.ttl_seconds

    def over_caps(self, total_bytes: int, total_entries: int) -> bool:
        if self.max_bytes is not None and total_bytes > self.max_bytes:
            return True
        return (
            self.max_entries is not None
            and total_entries > self.max_entries
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
            "ttl_seconds": self.ttl_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StoreLimits":
        known = {"max_bytes", "max_entries", "ttl_seconds"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SolverError(
                f"store limits have unknown fields {unknown}"
            )
        return cls(**{k: payload.get(k) for k in known})

    def __repr__(self) -> str:
        return (
            f"StoreLimits(max_bytes={self.max_bytes}, "
            f"max_entries={self.max_entries}, "
            f"ttl_seconds={self.ttl_seconds})"
        )


class ShardedDiskTier:
    """Disk storage for :class:`repro.service.cache.ResultCache`.

    Implements the pluggable-storage protocol (``load`` / ``get`` /
    ``store`` / ``location``): ``load`` returns nothing so the memory
    tier starts cold and reads through per key, ``get`` fetches one
    entry from its shard (verifying its integrity hash and TTL), and
    ``store`` merges dirty entries into their shards under per-shard
    locks, maintains the index, and enforces the store caps.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        prefix_len: int = 2,
        limits: Optional[StoreLimits] = None,
    ) -> None:
        if not 1 <= prefix_len <= 4:
            raise SolverError(
                f"shard prefix length must be in [1, 4], got {prefix_len}"
            )
        self.root = Path(root)
        self.prefix_len = prefix_len
        self.quarantined = 0
        self.integrity_failures = 0
        self.gc_runs = 0
        self.store_evictions = 0
        self._touches: Dict[str, float] = {}
        self._approx_bytes = 0
        self._approx_entries = 0
        self._open(limits)
        if limits is None:
            limits = self._load_persisted_limits()
        else:
            self._persist_limits(limits)
        self.limits = limits if limits is not None else StoreLimits()

    # -- layout --------------------------------------------------------
    @property
    def location(self) -> Path:
        return self.root

    def shard_path(self, key: str) -> Path:
        prefix = key[: self.prefix_len].lower()
        if len(prefix) < self.prefix_len or any(
            c not in "0123456789abcdef" for c in prefix
        ):
            raise SolverError(f"cache key {key!r} is not a hex digest")
        return self.root / f"shard-{prefix}.json"

    def _lock_path(self, shard: Path) -> Path:
        return shard.with_suffix(".lock")

    def _global_lock(self) -> Path:
        return self.root.parent / f"{self.root.name}.open.lock"

    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    def _index_lock(self) -> Path:
        return self.root / "cache-index.lock"

    def config_path(self) -> Path:
        return self.root / CONFIG_NAME

    def journal_path(self) -> Path:
        from repro.server.store_gc import JOURNAL_NAME

        return self.root / JOURNAL_NAME

    # -- open / migrate ------------------------------------------------
    def _open(self, limits: Optional[StoreLimits]) -> None:
        # The global lock serializes first-open races: two processes
        # may otherwise both see the single-file layout and fight over
        # the migration.
        with locked_file(self._global_lock()):
            sidecar = self.root.with_name(self.root.name + ".migrating")
            if self.root.is_file() or sidecar.exists():
                self._migrate_single_file()
            self.root.mkdir(parents=True, exist_ok=True)
        # A journal left by a GC pass that died mid-flight: finish its
        # plan before serving, so the store never runs with a cap
        # half-enforced.  (Resume is idempotent and cheap when the
        # journal is absent — the common case is one stat call.)
        from repro.server import store_gc

        store_gc.resume_pending(self)
        # Bootstrap the index once at open (a full shard scan only when
        # it is missing or corrupt) so the write path can stay purely
        # incremental — store() must never pay an all-shards read.
        self.load_index(verify=False)

    def _migrate_single_file(self) -> None:
        """Reshard a legacy single-file cache found at :attr:`root`.

        The legacy file is renamed aside first and deleted only after
        every shard write landed, so a crash mid-migration leaves
        either the sidecar or the shards — never neither.  (A leftover
        sidecar from a crashed migration is resumed on the next open;
        re-merging entries that already landed is idempotent, so a
        crash *between* shard writes is also safe.)
        """
        path = self.root
        sidecar = path.with_name(path.name + ".migrating")
        source = path if path.is_file() else sidecar
        try:
            with open(source) as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            raise SolverError(
                f"cannot migrate cache {source}: {exc}"
            ) from exc
        if payload.get("type") != SINGLE_FILE_TYPE:
            raise SolverError(
                f"{source} is not a portfolio cache "
                f"(type={payload.get('type')!r}); refusing to migrate"
            )
        if source is path:
            os.replace(path, sidecar)
        entries = payload.get("entries", {})
        self.root.mkdir(parents=True, exist_ok=True)
        self._merge(entries)
        sidecar.unlink()

    # -- persisted limits ----------------------------------------------
    def _persist_limits(self, limits: StoreLimits) -> None:
        """Record explicit limits so ``repro cache gc/stats`` (and any
        later opener that passes none) enforce the same policy."""
        atomic_write_json(
            self.config_path(),
            {
                "type": CONFIG_TYPE,
                "version": CONFIG_FORMAT_VERSION,
                "limits": limits.as_dict(),
            },
            sort_keys=True,
        )

    def _load_persisted_limits(self) -> Optional[StoreLimits]:
        path = self.config_path()
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            # A torn config is damage like any other: quarantine it and
            # run unbounded until the next explicit configuration.
            if quarantine_file(path, f"bad store config: {exc}") is not None:
                self.quarantined += 1
            return None
        if payload.get("type") != CONFIG_TYPE or not isinstance(
            payload.get("limits"), dict
        ):
            if (
                quarantine_file(path, "not a store config")
                is not None
            ):
                self.quarantined += 1
            return None
        try:
            return StoreLimits.from_dict(payload["limits"])
        except SolverError:
            if (
                quarantine_file(path, "invalid store limits")
                is not None
            ):
                self.quarantined += 1
            return None

    # -- shard IO ------------------------------------------------------
    def _read_shard(self, shard: Path) -> Dict[str, Dict[str, Any]]:
        """One shard's ``{"entries": ..., "meta": ...}``; damage is
        quarantined, not fatal.

        Truncated/torn JSON, a non-shard payload, or a malformed
        ``entries`` field all mean the file is damaged (atomic writes
        make a *partial* shard impossible, but disks, manual edits, and
        chaos tests still produce garbage) — the bad file is moved
        aside via :func:`quarantine_file` and the shard reads cold.  A
        shard from a *newer* format version is healthy data this build
        can't parse: that still raises rather than destroying it.
        Version-1 shards simply have no ``meta`` map.
        """
        empty: Dict[str, Dict[str, Any]] = {"entries": {}, "meta": {}}
        try:
            with open(shard) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return empty
        except json.JSONDecodeError as exc:
            self._quarantine(shard, f"bad JSON: {exc}")
            return empty
        except OSError as exc:
            raise SolverError(f"cannot load cache shard {shard}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("type") != SHARD_TYPE:
            kind = (
                payload.get("type") if isinstance(payload, dict) else None
            )
            self._quarantine(shard, f"not a cache shard (type={kind!r})")
            return empty
        if payload.get("version", 0) > SHARD_FORMAT_VERSION:
            raise SolverError(
                f"cache shard {shard} has version {payload['version']}, "
                f"newer than supported {SHARD_FORMAT_VERSION}"
            )
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            self._quarantine(
                shard, f"entries is {type(entries).__name__}, not an object"
            )
            return empty
        meta = payload.get("meta")
        if not isinstance(meta, dict):
            meta = {}
        return {"entries": entries, "meta": meta}

    def _quarantine(self, shard: Path, reason: str) -> None:
        if quarantine_file(shard, reason) is not None:
            self.quarantined += 1

    def _write_shard(
        self,
        shard: Path,
        entries: Dict[str, Dict[str, Any]],
        meta: Dict[str, Dict[str, Any]],
    ) -> None:
        atomic_write_json(
            shard,
            {
                "version": SHARD_FORMAT_VERSION,
                "type": SHARD_TYPE,
                "entries": entries,
                "meta": {k: meta[k] for k in entries if k in meta},
            },
        )
        # Chaos seam: truncate what was just written so the next read
        # exercises the quarantine path (one-shot, self-disarming).
        if faults.should_corrupt_shard_write():
            with open(shard, "w") as stream:
                stream.write('{"version": 1, "type": "portfolio_')

    def _merge(
        self, entries: Mapping[str, Dict[str, Any]]
    ) -> Dict[str, Dict[str, Any]]:
        """Merge fresh entries into their shards; returns their meta.

        Existing entries missing metadata (written by a version-1
        build) are stamped while the shard is open anyway — rewrites
        progressively upgrade the store without a migration pass.
        """
        by_shard: Dict[Path, Dict[str, Dict[str, Any]]] = {}
        for key, payload in entries.items():
            by_shard.setdefault(self.shard_path(key), {})[key] = payload
        written: Dict[str, Dict[str, Any]] = {}
        now = wall_now()
        for shard, fresh in sorted(by_shard.items()):
            with locked_file(self._lock_path(shard)):
                data = self._read_shard(shard)
                merged = data["entries"]
                meta = data["meta"]
                for key in merged:
                    if key not in meta and key not in fresh:
                        meta[key] = make_entry_meta(merged[key], now=now)
                for key, payload in fresh.items():
                    merged[key] = payload
                    meta[key] = make_entry_meta(payload, now=now)
                    written[key] = meta[key]
                self._write_shard(shard, merged, meta)
        return written

    # -- storage protocol ----------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Nothing eagerly: shards are read through per key."""
        return {}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        shard = self.shard_path(key)
        with locked_file(self._lock_path(shard)):
            data = self._read_shard(shard)
            payload = data["entries"].get(key)
            if payload is None:
                return None
            meta = data["meta"].get(key)
            if meta is not None:
                if not verify_entry(payload, meta):
                    self._quarantine_entry(
                        shard, data, key, "integrity hash mismatch"
                    )
                    return None
                if self.limits.expired(meta.get("c"), ttl_now()):
                    return None  # past TTL: evictable, never servable
        # Record the access outside the shard lock; stamps batch into
        # the index on the next store()/sync_index() instead of costing
        # a write per read.
        self._touches[key] = ttl_now()
        return payload

    def _quarantine_entry(
        self,
        shard: Path,
        data: Dict[str, Dict[str, Any]],
        key: str,
        reason: str,
    ) -> None:
        """Move one damaged entry aside; the rest of the shard lives on.

        The caller holds the shard lock.  The bad payload (with its
        claimed metadata) lands in a ``entry-*.corrupt-<ts>`` file for
        postmortems — same contract as :func:`quarantine_file`, scoped
        to one entry instead of torching its shard-mates.
        """
        payload = data["entries"].pop(key)
        meta = data["meta"].pop(key, None)
        quarantine_path = self.root / (
            f"entry-{key[:16]}.corrupt-{int(wall_now())}.json"
        )
        atomic_write_json(
            quarantine_path,
            {"key": key, "entry": payload, "meta": meta, "reason": reason},
            sort_keys=True,
        )
        self._write_shard(shard, data["entries"], data["meta"])
        self.integrity_failures += 1
        self.quarantined += 1
        log_key = f"{shard}#{key}"
        if log_key not in _QUARANTINE_LOGGED:
            _QUARANTINE_LOGGED.add(log_key)
            logger.warning(
                "quarantined corrupt cache entry %s from %s -> %s (%s)",
                key[:16],
                shard.name,
                quarantine_path.name,
                reason,
            )

    def store(
        self,
        entries: Mapping[str, Dict[str, Any]],
        dirty: Optional[Set[str]] = None,
    ) -> None:
        """Merge ``entries`` (restricted to ``dirty`` keys) into shards,
        fold the new metadata + batched access stamps into the index,
        and enforce the store caps (which may trigger a GC pass)."""
        if dirty is not None:
            entries = {
                key: entries[key] for key in dirty if key in entries
            }
        written: Dict[str, Dict[str, Any]] = {}
        if entries:
            written = self._merge(entries)
        if written or self._touches:
            self._update_index(written)
        if self.limits.enabled() and self.limits.over_caps(
            self._approx_bytes, self._approx_entries
        ):
            from repro.server.store_gc import run_gc

            # Non-blocking: if another process is already collecting,
            # its pass will bring the store under cap.
            run_gc(self, block=False)

    def sync_index(self) -> None:
        """Flush batched access stamps into the index (used at close)."""
        if self._touches:
            self._update_index({})

    # -- index ---------------------------------------------------------
    def _read_index(self) -> Optional[Dict[str, Any]]:
        """The raw index payload, or ``None`` when missing or damaged
        (damage is quarantined; the caller rebuilds from shards)."""
        path = self.index_path()
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            if quarantine_file(path, f"bad index: {exc}") is not None:
                self.quarantined += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("type") != INDEX_TYPE
            or not isinstance(payload.get("entries"), dict)
        ):
            if quarantine_file(path, "not a cache index") is not None:
                self.quarantined += 1
            return None
        if payload.get("version", 0) > INDEX_FORMAT_VERSION:
            # Unlike shards, the index holds no unique data — a newer
            # index is simply ignored and rebuilt in this format.
            return None
        return payload

    def _write_index(self, payload: Dict[str, Any]) -> None:
        atomic_write_json(self.index_path(), payload, sort_keys=True)
        # Chaos seam: truncate the index just written — the next reader
        # must fall back to rebuilding from the shards (one-shot).
        if faults.should_corrupt_index_write():
            with open(self.index_path(), "w") as stream:
                stream.write('{"version": 1, "type": "portfolio_cache_ind')

    def _shard_stamps(self) -> Dict[str, Tuple[int, int]]:
        """``{shard filename: (size, mtime_ns)}`` for staleness checks."""
        stamps: Dict[str, Tuple[int, int]] = {}
        for shard in sorted(self.root.glob("shard-*.json")):
            try:
                stat = shard.stat()
            except OSError:
                continue
            stamps[shard.name] = (stat.st_size, stat.st_mtime_ns)
        return stamps

    def _index_totals(self, payload: Dict[str, Any]) -> Tuple[int, int]:
        entries = payload.get("entries", {})
        total = 0
        for meta in entries.values():
            if isinstance(meta, dict):
                total += int(meta.get("b", 0) or 0)
        return total, len(entries)

    def _update_index(self, written: Dict[str, Dict[str, Any]]) -> None:
        """Fold fresh meta + batched touches into the on-disk index."""
        touches, self._touches = self._touches, {}
        with locked_file(self._index_lock()):
            payload = self._read_index()
            if payload is None:
                payload = self._scan_for_index()
            index_entries = payload["entries"]
            for key, meta in written.items():
                index_entries[key] = {
                    "b": meta["b"],
                    "c": meta["c"],
                    "a": meta["a"],
                    "v": meta.get("v"),
                }
            for key, stamp in touches.items():
                slot = index_entries.get(key)
                if slot is not None:
                    slot["a"] = max(slot.get("a", 0) or 0, stamp)
            payload["shards"] = {
                name: list(stamp)
                for name, stamp in self._shard_stamps().items()
            }
            self._write_index(payload)
            self._approx_bytes, self._approx_entries = self._index_totals(
                payload
            )

    def _scan_for_index(self) -> Dict[str, Any]:
        """Authoritative index payload built by reading every shard."""
        entries: Dict[str, Dict[str, Any]] = {}
        for shard in sorted(self.root.glob("shard-*.json")):
            with locked_file(self._lock_path(shard)):
                data = self._read_shard(shard)
            for key, payload in data["entries"].items():
                meta = data["meta"].get(key)
                if meta is None:
                    meta = {
                        "b": len(canonical_payload_bytes(payload)),
                        "c": 0,
                        "a": 0,
                        "v": None,
                    }
                entries[key] = {
                    "b": meta.get("b", 0),
                    "c": meta.get("c", 0),
                    "a": meta.get("a", 0),
                    "v": meta.get("v"),
                }
        return {
            "type": INDEX_TYPE,
            "version": INDEX_FORMAT_VERSION,
            "entries": entries,
            "shards": {},
        }

    def rebuild_index(self) -> Dict[str, Any]:
        """Rebuild the index from the shards (the recovery fallback)."""
        with locked_file(self._index_lock()):
            payload = self._scan_for_index()
            payload["shards"] = {
                name: list(stamp)
                for name, stamp in self._shard_stamps().items()
            }
            self._write_index(payload)
            self._approx_bytes, self._approx_entries = self._index_totals(
                payload
            )
        return payload

    def load_index(self, *, verify: bool = False) -> Dict[str, Any]:
        """The index payload, rebuilt from shards when missing, corrupt,
        or (with ``verify=True``) stale against the shard files.

        Staleness means a writer crashed between its shard write and
        its index update, or a foreign process wrote shards without
        maintaining the index — either way the shards win.
        """
        with locked_file(self._index_lock()):
            payload = self._read_index()
        if payload is None:
            return self.rebuild_index()
        if verify:
            recorded = {
                name: tuple(stamp)
                for name, stamp in payload.get("shards", {}).items()
            }
            if recorded != self._shard_stamps():
                return self.rebuild_index()
        self._approx_bytes, self._approx_entries = self._index_totals(
            payload
        )
        return payload

    def bytes_used(self) -> int:
        """Approximate store payload bytes (index-backed)."""
        return self._approx_bytes

    def entry_count(self) -> int:
        return self._approx_entries

    # -- introspection -------------------------------------------------
    def keys(self) -> Set[str]:
        """Every key currently on disk (reads all shards; test/debug)."""
        found: Set[str] = set()
        for shard in sorted(self.root.glob("shard-*.json")):
            with locked_file(self._lock_path(shard)):
                found.update(self._read_shard(shard)["entries"])
        return found

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return (
            f"ShardedDiskTier({str(self.root)!r}, "
            f"prefix_len={self.prefix_len}, limits={self.limits})"
        )
