"""The scoreboard: fan the corpus through the portfolio, score the run.

``run_scoreboard`` pushes a corpus through
:func:`repro.service.batch.solve_batch` (same pool, same cache, same
provenance rules as production traffic) and turns the records into
:class:`ScoreRow` s: per-instance depth, the best-known value for that
instance, the depth ratio against it, wall time, and the winning
solver.  Per-solver wins feed the same :class:`repro.service.stats
.WinTally` the daemon/gateway ``metrics`` ops report, so an offline
scoreboard run and a live server expose one vocabulary.

Best-known resolution, strongest first:

1. the instance's a-priori ground truth (``known_rank``, or a certified
   ``known_lower_bound`` when the run's depth meets it);
2. the run's own certified optimum (``result.optimal``);
3. the Eq. 3 rank lower bound computed during the solve.

A ratio of 1.0 therefore means *matches the best anything has ever
proven about this instance*; ratios are always >= 1.0 unless a solver
returns an impossible depth — which is reported as a
``lower_bound_violations`` entry and treated as a hard failure by the
CLI, because a depth below a proven lower bound means the solver (or
the bound) is broken.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import SolverError
from repro.corpus.registry import (
    DEFAULT_CORPUS_SEED,
    DEFAULT_PROFILE,
    CorpusInstance,
    build_corpus,
)
from repro.service.batch import BatchRecord, solve_batch
from repro.service.cache import ResultCache
from repro.service.portfolio import DEFAULT_PORTFOLIO
from repro.service.schema import SOLVER_SCHEMA_VERSION
from repro.service.stats import WinTally

SCOREBOARD_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ScoreRow:
    """One corpus instance's scored outcome."""

    case_id: str
    family: str
    shape: Tuple[int, int]
    depth: int
    best_known: int
    ratio: float
    optimal: bool
    winner: str
    lower_bound: int
    from_cache: bool
    wall_seconds: float

    def as_dict(self, *, include_timing: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "case_id": self.case_id,
            "family": self.family,
            "shape": list(self.shape),
            "depth": self.depth,
            "best_known": self.best_known,
            "ratio": round(self.ratio, 4),
            "optimal": self.optimal,
            "winner": self.winner,
            "lower_bound": self.lower_bound,
        }
        if include_timing:
            payload["from_cache"] = self.from_cache
            payload["wall_seconds"] = self.wall_seconds
        return payload


def _score(instance: CorpusInstance, record: BatchRecord) -> ScoreRow:
    result = record.result
    depth = result.depth
    known = instance.known_rank
    if known is None and result.optimal:
        known = depth
    if known is None:
        known = max(
            result.lower_bound,
            instance.known_lower_bound or 0,
        )
    best_known = max(1, known)
    return ScoreRow(
        case_id=instance.case_id,
        family=instance.family,
        shape=instance.matrix.shape,
        depth=depth,
        best_known=best_known,
        ratio=depth / best_known,
        optimal=result.optimal,
        winner=result.winner,
        lower_bound=max(result.lower_bound, instance.lower_bound or 0),
        from_cache=result.from_cache,
        wall_seconds=result.wall_seconds,
    )


@dataclass
class ScoreboardReport:
    """A scored corpus run plus the configuration that produced it."""

    profile: str
    seed: int
    members: Tuple[str, ...]
    rows: List[ScoreRow]
    tally: WinTally
    wall_seconds: float
    schema_version: int = SOLVER_SCHEMA_VERSION
    families: Tuple[str, ...] = ()
    race: str = "sequential"
    budget_per_instance: Optional[float] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def row(self, case_id: str) -> ScoreRow:
        for row in self.rows:
            if row.case_id == case_id:
                return row
        raise KeyError(f"no scoreboard row for {case_id!r}")

    def lower_bound_violations(self) -> List[ScoreRow]:
        """Rows whose depth beats a proven lower bound — solver bugs."""
        return [row for row in self.rows if row.depth < row.lower_bound]

    def family_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-family aggregates in row order: counts, ratios, timing."""
        summary: Dict[str, Dict[str, Any]] = {}
        for row in self.rows:
            entry = summary.setdefault(
                row.family,
                {
                    "instances": 0,
                    "optimal": 0,
                    "max_ratio": 0.0,
                    "_ratio_sum": 0.0,
                    "wall_seconds": 0.0,
                },
            )
            entry["instances"] += 1
            entry["optimal"] += 1 if row.optimal else 0
            entry["max_ratio"] = max(entry["max_ratio"], row.ratio)
            entry["_ratio_sum"] += row.ratio
            entry["wall_seconds"] += row.wall_seconds
        for entry in summary.values():
            entry["mean_ratio"] = round(
                entry.pop("_ratio_sum") / entry["instances"], 4
            )
            entry["max_ratio"] = round(entry["max_ratio"], 4)
            entry["wall_seconds"] = round(entry["wall_seconds"], 3)
        return summary

    def as_dict(self, *, include_timing: bool = True) -> Dict[str, Any]:
        """JSON-able report.  ``include_timing=False`` drops every
        wall-clock field, leaving the deterministic slice a baseline is
        built from."""
        payload: Dict[str, Any] = {
            "type": "scoreboard_report",
            "version": SCOREBOARD_FORMAT_VERSION,
            "schema_version": self.schema_version,
            "profile": self.profile,
            "seed": self.seed,
            "members": list(self.members),
            "race": self.race,
            "families": list(self.families),
            "rows": [
                row.as_dict(include_timing=include_timing)
                for row in self.rows
            ],
            **self.tally.as_dict(),
        }
        if include_timing:
            payload["budget_per_instance"] = self.budget_per_instance
            payload["wall_seconds"] = self.wall_seconds
            payload["family_summary"] = self.family_summary()
        return payload


def run_scoreboard(
    *,
    families: Optional[Sequence[str]] = None,
    profile: str = DEFAULT_PROFILE,
    seed: int = DEFAULT_CORPUS_SEED,
    members: Sequence[str] = DEFAULT_PORTFOLIO,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    budget_per_instance: Optional[float] = None,
    race: str = "sequential",
    instances: Optional[Sequence[CorpusInstance]] = None,
) -> ScoreboardReport:
    """Solve the corpus with the portfolio and score every instance.

    ``instances`` overrides corpus construction for callers that have
    already built (or filtered) one; otherwise ``families``/``profile``/
    ``seed`` name a reproducible corpus.  Everything else is the
    standard :func:`solve_batch` surface — notably ``cache``, which
    turns repeat scoreboard runs into cache reads, and whose entries
    are keyed on the solver-config schema version so a stale cache can
    never fake a fresh win.
    """
    if instances is None:
        instances = build_corpus(families, profile=profile, seed=seed)
    else:
        instances = list(instances)
    began = time.perf_counter()
    records = solve_batch(
        instances,
        members=members,
        seed=seed,
        workers=workers,
        cache=cache,
        budget_per_instance=budget_per_instance,
        race=race,
    )
    by_id = {instance.case_id: instance for instance in instances}
    tally = WinTally()
    rows: List[ScoreRow] = []
    for record in records:
        instance = by_id[record.case_id]
        rows.append(_score(instance, record))
        tally.record_result(record.result)
    family_order: List[str] = []
    for instance in instances:
        if instance.family not in family_order:
            family_order.append(instance.family)
    return ScoreboardReport(
        profile=profile,
        seed=seed,
        members=tuple(members),
        rows=rows,
        tally=tally,
        wall_seconds=time.perf_counter() - began,
        families=tuple(family_order),
        race=race,
        budget_per_instance=budget_per_instance,
    )


def report_from_dict(payload: Dict[str, Any]) -> ScoreboardReport:
    """Rebuild a report from :meth:`ScoreboardReport.as_dict` output."""
    if payload.get("type") != "scoreboard_report":
        raise SolverError(
            f"expected a scoreboard_report payload, "
            f"got {payload.get('type')!r}"
        )
    rows = [
        ScoreRow(
            case_id=entry["case_id"],
            family=entry["family"],
            shape=tuple(entry["shape"]),
            depth=entry["depth"],
            best_known=entry["best_known"],
            ratio=entry["ratio"],
            optimal=entry["optimal"],
            winner=entry["winner"],
            lower_bound=entry["lower_bound"],
            from_cache=entry.get("from_cache", False),
            wall_seconds=entry.get("wall_seconds", 0.0),
        )
        for entry in payload["rows"]
    ]
    tally = WinTally()
    tally.solved = payload.get("solved", 0)
    for name, count in payload.get("wins", {}).items():
        tally._wins[name] = count
    return ScoreboardReport(
        profile=payload["profile"],
        seed=payload["seed"],
        members=tuple(payload["members"]),
        rows=rows,
        tally=tally,
        wall_seconds=payload.get("wall_seconds", 0.0),
        schema_version=payload.get("schema_version", 1),
        families=tuple(payload.get("families", ())),
        race=payload.get("race", "sequential"),
        budget_per_instance=payload.get("budget_per_instance"),
    )
