"""Standing benchmark corpus and solver scoreboard.

The corpus is a registry of named, seeded, reproducible instance
families — the paper's worked matrices, the Table-I random ensembles,
adversarial fooling-set instances, FTQC/QLDPC structure matrices, and
scale sweeps.  Every instance is a deterministic function of
``(family, profile, seed)``, so two machines building the same corpus
hold byte-identical matrices.

The scoreboard fans a corpus through the portfolio service
(:func:`repro.service.batch.solve_batch`) and reports per-instance
depth, depth ratio against the best-known value, wall time, and the
winning solver — then diffs the run against a checked-in baseline so a
solver regression fails loudly instead of shipping silently.  Wired as
``python -m repro scoreboard`` (``run`` / ``diff`` / ``update-baseline``
/ ``list``).

Every new workload should land here as a corpus family: register it
with :func:`repro.corpus.registry.register_family` and it is picked up
by the scoreboard, the baselines, and the benchmarks for free.
"""

from repro.corpus.registry import (
    PROFILES,
    CorpusFamily,
    CorpusInstance,
    build_corpus,
    family_names,
    get_family,
    instance_from_case,
    register_family,
)
from repro.corpus.scoreboard import (
    ScoreboardReport,
    ScoreRow,
    run_scoreboard,
)
from repro.corpus.baseline import (
    BASELINE_FORMAT_VERSION,
    BaselineDiff,
    baseline_from_report,
    diff_against_baseline,
    format_diff,
    load_baseline,
    write_baseline,
)

# Importing the family modules registers the built-in corpus; the
# registry itself stays import-cycle-free (benchgen.suite registers the
# Table-I families and imports only repro.corpus.registry).
import repro.corpus.families  # noqa: E402,F401  (registration side effect)
import repro.benchgen.suite  # noqa: E402,F401  (registration side effect)

__all__ = [
    "BASELINE_FORMAT_VERSION",
    "BaselineDiff",
    "CorpusFamily",
    "CorpusInstance",
    "PROFILES",
    "ScoreRow",
    "ScoreboardReport",
    "baseline_from_report",
    "build_corpus",
    "diff_against_baseline",
    "family_names",
    "format_diff",
    "get_family",
    "instance_from_case",
    "load_baseline",
    "register_family",
    "run_scoreboard",
    "write_baseline",
]
