"""The corpus registry: named, seeded, reproducible instance families.

A :class:`CorpusFamily` is a named builder that turns ``(profile,
seed)`` into a list of :class:`CorpusInstance` s.  Builders must be
pure: the same profile and seed always yield the same instances, in the
same order, with the same ids — that determinism is what lets a
checked-in scoreboard baseline reproduce byte-identically.

Profiles scale the corpus without changing its identity:

* ``smoke``  — a couple of tiny instances per family; CI gate material
  (``python -m repro scoreboard run --smoke``);
* ``quick``  — the laptop-friendly default, mirroring the repo's
  ``quick`` experiment scale;
* ``full``   — paper-scale counts (mirrors ``REPRO_FULL=1``).

Families register themselves at import time via
:func:`register_family`; :func:`build_corpus` loads the built-in family
modules on first use, so callers never need to know which module
defines which family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import SolverError

PROFILES = ("smoke", "quick", "full")
"""Corpus sizes, smallest first.  ``smoke`` must stay CI-cheap."""

DEFAULT_PROFILE = "quick"

DEFAULT_CORPUS_SEED = 2024
"""The seed the checked-in baselines are built from."""


def validate_profile(profile: str) -> str:
    if profile not in PROFILES:
        raise SolverError(
            f"profile must be one of {PROFILES}, got {profile!r}"
        )
    return profile


@dataclass(frozen=True)
class CorpusInstance:
    """One reproducible benchmark instance plus its known ground truth.

    ``known_rank`` is the exact binary rank when the construction
    certifies one (e.g. the Set-2 matrices, the paper's worked
    examples); ``known_lower_bound`` is a proven lower bound that need
    not be tight (e.g. an exact fooling number).  Both are *a-priori*
    facts of the instance, never outputs of the solvers under test —
    the scoreboard uses them to catch solvers that return impossible
    depths.  Quacks like a batch item (``case_id`` + ``matrix``), so a
    corpus feeds straight into :func:`repro.service.batch.solve_batch`.
    """

    case_id: str
    family: str
    matrix: BinaryMatrix
    seed: Optional[int] = None
    known_rank: Optional[int] = None
    known_lower_bound: Optional[int] = None
    params: Dict[str, object] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if self.known_rank is not None and self.known_lower_bound is not None:
            if self.known_lower_bound > self.known_rank:
                raise SolverError(
                    f"{self.case_id}: lower bound {self.known_lower_bound} "
                    f"exceeds known rank {self.known_rank}"
                )

    @property
    def lower_bound(self) -> Optional[int]:
        """The strongest a-priori lower bound carried by the instance."""
        if self.known_rank is not None:
            return self.known_rank
        return self.known_lower_bound

    def __repr__(self) -> str:
        return f"CorpusInstance({self.case_id})"


def instance_from_case(
    case: object, *, family: str, seed: Optional[int] = None
) -> CorpusInstance:
    """Adapt a :class:`repro.benchgen.suite.BenchmarkCase` (or anything
    with ``case_id``/``matrix``/``params``) into a corpus instance."""
    return CorpusInstance(
        case_id=case.case_id,
        family=family,
        matrix=case.matrix,
        seed=seed,
        known_rank=getattr(case, "known_binary_rank", None),
        params=dict(getattr(case, "params", {})),
    )


FamilyBuilder = Callable[[str, int], List[CorpusInstance]]
"""``(profile, seed) -> instances``; must be deterministic."""


@dataclass(frozen=True)
class CorpusFamily:
    """A named instance family: description, tags, and a pure builder."""

    name: str
    description: str
    builder: FamilyBuilder
    tags: Tuple[str, ...] = ()

    def build(self, profile: str, seed: int) -> List[CorpusInstance]:
        """Instances of this family; validated (family stamp, unique ids)."""
        validate_profile(profile)
        instances = self.builder(profile, seed)
        seen: Dict[str, int] = {}
        for instance in instances:
            if instance.family != self.name:
                raise SolverError(
                    f"family {self.name!r} built an instance stamped "
                    f"{instance.family!r} ({instance.case_id})"
                )
            seen[instance.case_id] = seen.get(instance.case_id, 0) + 1
        duplicates = sorted(cid for cid, n in seen.items() if n > 1)
        if duplicates:
            raise SolverError(
                f"family {self.name!r} built duplicate case ids: "
                f"{duplicates[:5]}"
            )
        return instances


_REGISTRY: Dict[str, CorpusFamily] = {}


def register_family(
    name: str,
    description: str,
    *,
    tags: Sequence[str] = (),
) -> Callable[[FamilyBuilder], FamilyBuilder]:
    """Decorator: register ``builder`` as the corpus family ``name``.

    Registration is module-import driven and must be unique — two
    modules claiming one family name is a packaging bug, not a
    last-writer-wins situation.
    """

    def wrap(builder: FamilyBuilder) -> FamilyBuilder:
        if name in _REGISTRY:
            raise SolverError(f"corpus family {name!r} already registered")
        _REGISTRY[name] = CorpusFamily(
            name=name,
            description=description,
            builder=builder,
            tags=tuple(tags),
        )
        return builder

    return wrap


def _ensure_builtin() -> None:
    """Load the modules that register the built-in families."""
    import repro.benchgen.suite  # noqa: F401  (Table-I families)
    import repro.corpus.families  # noqa: F401  (everything else)


def family_names() -> List[str]:
    """All registered family names, registration order preserved."""
    _ensure_builtin()
    return list(_REGISTRY)


def get_family(name: str) -> CorpusFamily:
    _ensure_builtin()
    family = _REGISTRY.get(name)
    if family is None:
        raise SolverError(
            f"unknown corpus family {name!r} "
            f"(registered: {', '.join(_REGISTRY) or 'none'})"
        )
    return family


def build_corpus(
    families: Optional[Sequence[str]] = None,
    *,
    profile: str = DEFAULT_PROFILE,
    seed: int = DEFAULT_CORPUS_SEED,
) -> List[CorpusInstance]:
    """Build the named families (default: all) into one flat instance list.

    Instances come back family by family, in registration order, with
    ids checked unique across the whole corpus — the exact order and
    identity contract the scoreboard and its baselines rely on.
    """
    _ensure_builtin()
    names = family_names() if families is None else list(families)
    instances: List[CorpusInstance] = []
    for name in names:
        instances.extend(get_family(name).build(profile, seed))
    seen: Dict[str, int] = {}
    for instance in instances:
        seen[instance.case_id] = seen.get(instance.case_id, 0) + 1
    duplicates = sorted(cid for cid, n in seen.items() if n > 1)
    if duplicates:
        raise SolverError(
            f"case ids collide across corpus families: {duplicates[:5]}"
        )
    return instances


def thin(
    cases: Sequence, cap: Optional[int]
) -> List:
    """An evenly spread, order-preserving sample of at most ``cap`` cases.

    Families use this to shrink a full enumeration to a profile's size
    while still spanning the parameter range (a plain head-slice would
    only ever exercise the smallest occupancy / rank / size).  The
    selection depends only on ``len(cases)`` and ``cap`` — deterministic
    by construction.
    """
    if cap is None or len(cases) <= cap:
        return list(cases)
    if cap <= 0:
        return []
    # cap evenly spaced indices, first case always included.
    step = len(cases) / cap
    return [cases[int(i * step)] for i in range(cap)]
