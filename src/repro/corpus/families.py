"""Built-in corpus families (beyond the Table-I ensembles).

The Table-I families (``table1-rand`` / ``table1-opt`` / ``table1-gap``)
register themselves from :mod:`repro.benchgen.suite` — the suite
builders are the single source of truth there.  This module registers
the rest:

* ``paper``        — the worked matrices of the paper's figures and
  equations, with their published binary ranks as ground truth;
* ``fooling``      — adversarial fooling-set instances: matrices whose
  exact fooling number is computed (or known by construction) at build
  time and carried as a hard lower bound every solver must respect;
* ``surface-code`` — FTQC patch-grid patterns (Figure 5a): logical
  masks expanded over transversal / boundary-row / corner patch masks;
* ``qldpc``        — 1D qLDPC memory-block offset patterns (Figure 5b);
* ``scale-sweep``  — random matrices of growing size at fixed
  occupancy, the knob that keeps the corpus probing beyond the paper's
  shapes as kernels get faster.

Every builder is a pure function of ``(profile, seed)``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.benchgen.random_matrices import random_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.core.fooling import fooling_number
from repro.core.paper_matrices import (
    equation_2,
    figure_1b,
    figure_3,
    section_2_nonbinary_example,
)
from repro.corpus.registry import (
    CorpusInstance,
    register_family,
    validate_profile,
)
from repro.ftqc.qldpc import BlockLayout
from repro.ftqc.surface_code import (
    SurfaceCodeGrid,
    boundary_row_patch_mask,
    corner_patch_mask,
)
from repro.utils.rng import spawn_seeds

FOOLING_EXACT_MAX_CELLS = 128
"""Exact fooling search cap; family shapes stay well under it."""


# ----------------------------------------------------------------------
# paper — the worked examples, ranks as published
# ----------------------------------------------------------------------
@register_family(
    "paper",
    "the paper's worked matrices (Fig. 1b, Eq. 2, Fig. 3, Sec. II) with "
    "their published binary ranks",
    tags=("paper", "exact-ground-truth"),
)
def _paper_family(profile: str, seed: int) -> List[CorpusInstance]:
    validate_profile(profile)
    fixed: List[Tuple[str, BinaryMatrix, int]] = [
        ("paper-figure1b", figure_1b(), 5),
        ("paper-equation2", equation_2(), 3),
        ("paper-figure3", figure_3(), 4),
        ("paper-section2", section_2_nonbinary_example(), 3),
    ]
    return [
        CorpusInstance(
            case_id=case_id,
            family="paper",
            matrix=matrix,
            known_rank=rank,
        )
        for case_id, matrix, rank in fixed
    ]


# ----------------------------------------------------------------------
# fooling — adversarial instances with proven lower bounds
# ----------------------------------------------------------------------
def _fooling_sizes(profile: str) -> Tuple[List[int], List[int]]:
    """(structured sizes, random sizes) per profile."""
    if profile == "smoke":
        return [4, 6], [6]
    if profile == "quick":
        return [4, 6, 8], [6, 8, 8]
    return [4, 6, 8, 10], [6, 8, 8, 10, 10]


@register_family(
    "fooling",
    "adversarial fooling-set instances: identities, triangular ladders, "
    "identity complements, and random draws with exact fooling numbers "
    "as hard lower bounds",
    tags=("adversarial", "lower-bound"),
)
def _fooling_family(profile: str, seed: int) -> List[CorpusInstance]:
    validate_profile(profile)
    structured_sizes, random_sizes = _fooling_sizes(profile)
    instances: List[CorpusInstance] = []
    for n in structured_sizes:
        # Identity: the n diagonal cells are pairwise fooling and the n
        # distinct rows give a matching trivial cover — r_B = phi = n.
        instances.append(
            CorpusInstance(
                case_id=f"fool-identity-{n}",
                family="fooling",
                matrix=BinaryMatrix.identity(n),
                known_rank=n,
                known_lower_bound=n,
                params={"n": n, "kind": "identity"},
            )
        )
        # Upper-triangular ladder: diagonal again fools (the below-
        # diagonal cross entry is 0), n distinct rows cover — r_B = n.
        triangular = BinaryMatrix(
            [((1 << n) - 1) & ~((1 << i) - 1) for i in range(n)], n
        )
        instances.append(
            CorpusInstance(
                case_id=f"fool-triangular-{n}",
                family="fooling",
                matrix=triangular,
                known_rank=n,
                known_lower_bound=n,
                params={"n": n, "kind": "triangular"},
            )
        )
        # Identity complement: the Sec. II cautionary shape where the
        # fooling bound goes slack against r_B as n grows — adversarial
        # for anything that trusts fooling sets as tight.
        complement = BinaryMatrix.identity(n).complement()
        instances.append(
            CorpusInstance(
                case_id=f"fool-complement-{n}",
                family="fooling",
                matrix=complement,
                known_lower_bound=fooling_number(
                    complement, max_cells=FOOLING_EXACT_MAX_CELLS, seed=0
                ),
                params={"n": n, "kind": "complement"},
            )
        )
    seeds = spawn_seeds(seed, len(random_sizes), salt="corpus/fooling")
    for index, n in enumerate(random_sizes):
        matrix = random_matrix(n, n, 0.4, seed=seeds[index])
        # The exact fooling number is a certified lower bound on r_B;
        # the B&B search is deterministic, so the recorded bound is too.
        instances.append(
            CorpusInstance(
                case_id=f"fool-random-{n}-{index}",
                family="fooling",
                matrix=matrix,
                seed=seeds[index],
                known_lower_bound=fooling_number(
                    matrix, max_cells=FOOLING_EXACT_MAX_CELLS, seed=0
                ),
                params={"n": n, "occupancy": 0.4, "kind": "random"},
            )
        )
    return instances


# ----------------------------------------------------------------------
# surface-code — FTQC patch grids (Figure 5a)
# ----------------------------------------------------------------------
def _surface_grids(profile: str) -> List[Tuple[int, int, int]]:
    """(patch_rows, patch_cols, distance) per profile."""
    if profile == "smoke":
        return [(2, 2, 2)]
    if profile == "quick":
        return [(2, 2, 2), (2, 3, 3)]
    return [(2, 2, 2), (2, 3, 3), (3, 3, 3), (3, 4, 5)]


@register_family(
    "surface-code",
    "surface-code patch grids (Fig. 5a): logical masks expanded over "
    "transversal, boundary-row, and corner patch masks",
    tags=("ftqc", "structured"),
)
def _surface_code_family(profile: str, seed: int) -> List[CorpusInstance]:
    validate_profile(profile)
    instances: List[CorpusInstance] = []
    for rows, cols, distance in _surface_grids(profile):
        grid = SurfaceCodeGrid(rows, cols, distance)
        logical_identity = BinaryMatrix(
            [1 << min(i, cols - 1) for i in range(rows)], cols
        )
        logical_ones = BinaryMatrix.all_ones(rows, cols)
        tag = f"{rows}x{cols}d{distance}"
        # Transversal gate on a staircase of logical qubits: the patch
        # factor has r_B = 1, the logical factor has r_B = #distinct
        # rows here, and Eq. 5's bound meets the product — exact rank
        # known by construction.
        staircase_rank = len(set(logical_identity.row_masks))
        instances.append(
            CorpusInstance(
                case_id=f"sc-transversal-{tag}",
                family="surface-code",
                matrix=grid.physical_pattern(logical_identity),
                known_rank=staircase_rank,
                params={
                    "grid": (rows, cols),
                    "distance": distance,
                    "patch": "transversal",
                },
            )
        )
        # Boundary-row preparation on every patch: rank-1 patch times
        # all-ones logical — a single rectangle, r_B = 1.
        instances.append(
            CorpusInstance(
                case_id=f"sc-boundary-{tag}",
                family="surface-code",
                matrix=grid.physical_pattern(
                    logical_ones, boundary_row_patch_mask(distance)
                ),
                known_rank=1,
                params={
                    "grid": (rows, cols),
                    "distance": distance,
                    "patch": "boundary-row",
                },
            )
        )
        # Corner injection sites across the staircase: a permutation-
        # like pattern again, one rectangle per distinct logical row.
        instances.append(
            CorpusInstance(
                case_id=f"sc-corner-{tag}",
                family="surface-code",
                matrix=grid.physical_pattern(
                    logical_identity, corner_patch_mask(distance)
                ),
                known_rank=staircase_rank,
                params={
                    "grid": (rows, cols),
                    "distance": distance,
                    "patch": "corner",
                },
            )
        )
    return instances


# ----------------------------------------------------------------------
# qldpc — 1D memory-block offset patterns (Figure 5b)
# ----------------------------------------------------------------------
def _qldpc_layouts(profile: str) -> List[Tuple[int, int, int]]:
    """(num_blocks, block_size, qubits_per_block) per profile."""
    if profile == "smoke":
        return [(4, 6, 2)]
    if profile == "quick":
        return [(4, 6, 2), (6, 8, 3), (8, 10, 3)]
    return [(4, 6, 2), (6, 8, 3), (8, 10, 3), (10, 12, 4), (12, 16, 5)]


@register_family(
    "qldpc",
    "qLDPC memory blocks in 1D layout (Fig. 5b): per-block random "
    "offset patterns, the workload behind the Section V conjecture",
    tags=("ftqc", "qldpc"),
)
def _qldpc_family(profile: str, seed: int) -> List[CorpusInstance]:
    validate_profile(profile)
    layouts = _qldpc_layouts(profile)
    seeds = spawn_seeds(seed, len(layouts), salt="corpus/qldpc")
    instances: List[CorpusInstance] = []
    for index, (blocks, size, qubits) in enumerate(layouts):
        layout = BlockLayout(blocks, size)
        instances.append(
            CorpusInstance(
                case_id=f"qldpc-{blocks}b{size}q{qubits}",
                family="qldpc",
                matrix=layout.random_pattern(qubits, seed=seeds[index]),
                seed=seeds[index],
                params={
                    "num_blocks": blocks,
                    "block_size": size,
                    "qubits_per_block": qubits,
                },
            )
        )
    return instances


# ----------------------------------------------------------------------
# scale-sweep — growing random shapes at fixed occupancy
# ----------------------------------------------------------------------
def _sweep_shapes(profile: str) -> List[Tuple[int, int]]:
    if profile == "smoke":
        return [(6, 6), (8, 12)]
    if profile == "quick":
        return [(8, 8), (12, 12), (12, 24), (16, 16)]
    return [(8, 8), (12, 12), (16, 16), (16, 32), (24, 24), (32, 32)]


SWEEP_OCCUPANCY = 0.3
"""Dense enough that the rank bound is usually slack (real work), sparse
enough that SAP stays tractable at the full profile's sizes."""


@register_family(
    "scale-sweep",
    "random matrices of growing size at fixed occupancy — the corpus's "
    "beyond-paper-scale probe",
    tags=("random", "scaling"),
)
def _scale_sweep_family(profile: str, seed: int) -> List[CorpusInstance]:
    validate_profile(profile)
    shapes = _sweep_shapes(profile)
    seeds = spawn_seeds(seed, len(shapes), salt="corpus/scale-sweep")
    return [
        CorpusInstance(
            case_id=f"sweep-{rows}x{cols}",
            family="scale-sweep",
            matrix=random_matrix(
                rows, cols, SWEEP_OCCUPANCY, seed=seeds[index]
            ),
            seed=seeds[index],
            params={"occupancy": SWEEP_OCCUPANCY, "shape": (rows, cols)},
        )
        for index, (rows, cols) in enumerate(shapes)
    ]


__all__ = ["FOOLING_EXACT_MAX_CELLS", "SWEEP_OCCUPANCY"]
