"""``python -m repro scoreboard`` — run / diff / update-baseline / list.

The scoreboard CLI is the corpus subsystem's front door:

    python -m repro scoreboard run [--profile P | --smoke] [--baseline F]
    python -m repro scoreboard diff --baseline F [--max-slowdown X]
    python -m repro scoreboard update-baseline --baseline F [--include-timing]
    python -m repro scoreboard list [--profile P]

``run`` fans the corpus through the solver portfolio and prints the
per-instance score table; ``diff`` re-runs and exits 1 when the run
regresses against a checked-in baseline (the CI gate); ``update-
baseline`` rewrites the baseline byte-identically from a fresh run;
``list`` enumerates the registered families.  Exit codes follow the
rest of the CLI: 0 ok, 1 gate failure (regression, lower-bound
violation, corpus shrinkage), 2 usage or I/O errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.corpus.baseline import (
    baseline_from_report,
    diff_against_baseline,
    format_diff,
    load_baseline,
    write_baseline,
)
from repro.corpus.registry import (
    DEFAULT_CORPUS_SEED,
    DEFAULT_PROFILE,
    PROFILES,
    build_corpus,
    family_names,
    get_family,
)
from repro.corpus.scoreboard import ScoreboardReport, run_scoreboard
from repro.utils.tables import format_table


def _resolve_profile(args: argparse.Namespace) -> str:
    """``--smoke`` is shorthand for ``--profile smoke`` (CI spelling)."""
    if getattr(args, "smoke", False):
        return "smoke"
    return args.profile


def _families(args: argparse.Namespace) -> Optional[List[str]]:
    if not args.families:
        return None
    return [name for name in args.families.split(",") if name]


def _members(args: argparse.Namespace) -> Sequence[str]:
    return tuple(spec for spec in args.members.split(",") if spec)


def _cache(args: argparse.Namespace):
    from repro.core.exceptions import SolverError
    from repro.service.cache import ResultCache

    if args.cache and args.cache_dir:
        raise SolverError("pass --cache or --cache-dir, not both")
    if args.cache:
        return ResultCache(path=args.cache)
    if args.cache_dir:
        return ResultCache.sharded(args.cache_dir)
    return None


def _run(args: argparse.Namespace) -> ScoreboardReport:
    cache = _cache(args)
    try:
        return run_scoreboard(
            families=_families(args),
            profile=_resolve_profile(args),
            seed=args.seed,
            members=_members(args),
            workers=args.workers,
            cache=cache,
            budget_per_instance=args.budget,
            race=args.race,
        )
    finally:
        if cache is not None:
            cache.flush()


def _print_report(report: ScoreboardReport) -> None:
    rows = [
        [
            row.case_id,
            row.family,
            f"{row.shape[0]}x{row.shape[1]}",
            row.depth,
            row.best_known,
            f"{row.ratio:.3f}",
            "yes" if row.optimal else "no",
            row.winner,
            "hit" if row.from_cache else "miss",
            f"{row.wall_seconds:.3f}s",
        ]
        for row in report.rows
    ]
    print(
        format_table(
            ["instance", "family", "shape", "depth", "best", "ratio",
             "optimal", "winner", "cache", "time"],
            rows,
            title=f"scoreboard — profile {report.profile}, seed "
            f"{report.seed}, members: {', '.join(report.members)}",
        )
    )
    print()
    summary = report.family_summary()
    print(
        format_table(
            ["family", "instances", "optimal", "mean ratio", "max ratio",
             "time"],
            [
                [
                    family,
                    entry["instances"],
                    entry["optimal"],
                    f"{entry['mean_ratio']:.3f}",
                    f"{entry['max_ratio']:.3f}",
                    f"{entry['wall_seconds']:.3f}s",
                ]
                for family, entry in summary.items()
            ],
            title=f"{len(report.rows)} instances across "
            f"{len(summary)} families in {report.wall_seconds:.2f}s",
        )
    )
    tally = report.tally
    if tally.solved:
        shares = ", ".join(
            f"{name} {tally.win_rate(name):.0%}" for name in tally.wins()
        )
        print(f"wins: {shares} ({tally.solved} fresh solves)")


def _write_json(path: str, report: ScoreboardReport) -> None:
    from repro.experiments.common import write_json

    write_json(path, report.as_dict())
    print(f"wrote {path}")


def cmd_scoreboard_run(args: argparse.Namespace) -> int:
    report = _run(args)
    _print_report(report)
    if args.json:
        _write_json(args.json, report)
    violations = report.lower_bound_violations()
    if violations:
        names = ", ".join(row.case_id for row in violations)
        print(
            f"error: depth below proven lower bound on: {names}",
            file=sys.stderr,
        )
        return 1
    if args.baseline:
        diff = diff_against_baseline(
            report,
            load_baseline(args.baseline),
            max_slowdown=args.max_slowdown,
        )
        print()
        print(format_diff(diff))
        if diff.failed:
            return 1
    return 0


def cmd_scoreboard_diff(args: argparse.Namespace) -> int:
    baseline = load_baseline(args.baseline)
    report = _run(args)
    diff = diff_against_baseline(
        report, baseline, max_slowdown=args.max_slowdown
    )
    print(format_diff(diff))
    return 1 if diff.failed else 0


def cmd_scoreboard_update(args: argparse.Namespace) -> int:
    report = _run(args)
    violations = report.lower_bound_violations()
    if violations:
        names = ", ".join(row.case_id for row in violations)
        print(
            f"error: refusing to bake a lower-bound violation into the "
            f"baseline ({names})",
            file=sys.stderr,
        )
        return 1
    payload = baseline_from_report(
        report, include_timing=args.include_timing
    )
    write_baseline(args.baseline, payload)
    print(
        f"wrote {args.baseline}: {len(report.rows)} instances, "
        f"profile {report.profile}, seed {report.seed}"
        + (" (with timing)" if args.include_timing else "")
    )
    return 0


def cmd_scoreboard_list(args: argparse.Namespace) -> int:
    profile = _resolve_profile(args)
    names = _families(args) or family_names()
    rows = []
    for name in names:
        family = get_family(name)
        instances = build_corpus([name], profile=profile, seed=args.seed)
        rows.append(
            [
                name,
                len(instances),
                ",".join(family.tags) or "-",
                family.description,
            ]
        )
    print(
        format_table(
            ["family", f"#{profile}", "tags", "description"],
            rows,
            title=f"registered corpus families (profile {profile}, "
            f"seed {args.seed})",
            align_right_from=99,
        )
    )
    return 0


def add_scoreboard_parser(sub) -> None:
    """Attach the ``scoreboard`` command tree to the top-level parser."""
    parser = sub.add_parser(
        "scoreboard",
        help="run the standing benchmark corpus and gate on regressions",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    board = parser.add_subparsers(dest="scoreboard_command", required=True)

    def corpus_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile", default=DEFAULT_PROFILE, choices=PROFILES,
            help=f"corpus size profile (default {DEFAULT_PROFILE})",
        )
        p.add_argument(
            "--smoke", action="store_true",
            help="shorthand for --profile smoke (the CI gate size)",
        )
        p.add_argument(
            "--families", default=None,
            help="comma-separated family subset (default: all registered)",
        )
        p.add_argument("--seed", type=int, default=DEFAULT_CORPUS_SEED)

    def solve_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--members", default="trivial,packing:32,sap",
            help="comma-separated portfolio members",
        )
        p.add_argument("--workers", type=int, default=1)
        p.add_argument(
            "--budget", type=float, default=None,
            help="wall-clock budget per instance (seconds)",
        )
        p.add_argument(
            "--cache", default=None, help="JSON result-cache file"
        )
        p.add_argument(
            "--cache-dir", default=None,
            help="sharded result-cache directory",
        )
        p.add_argument(
            "--race", default="sequential",
            choices=["sequential", "concurrent"],
        )

    p_run = board.add_parser(
        "run", help="solve the corpus and print the score table"
    )
    corpus_flags(p_run)
    solve_flags(p_run)
    p_run.add_argument(
        "--baseline", default=None,
        help="also diff against this baseline (exit 1 on regression)",
    )
    p_run.add_argument(
        "--max-slowdown", type=float, default=None,
        help="fail instances slower than baseline timing by this factor "
        "(needs a baseline written with --include-timing)",
    )
    p_run.add_argument("--json", default=None, help="report output path")
    p_run.set_defaults(func=cmd_scoreboard_run)

    p_diff = board.add_parser(
        "diff", help="re-run and compare against a baseline (the CI gate)"
    )
    corpus_flags(p_diff)
    solve_flags(p_diff)
    p_diff.add_argument(
        "--baseline", required=True, help="baseline JSON to compare against"
    )
    p_diff.add_argument(
        "--max-slowdown", type=float, default=None,
        help="fail instances slower than baseline timing by this factor",
    )
    p_diff.set_defaults(func=cmd_scoreboard_diff)

    p_update = board.add_parser(
        "update-baseline",
        help="re-run and rewrite the baseline (byte-identical for a "
        "fixed profile/seed/members)",
    )
    corpus_flags(p_update)
    solve_flags(p_update)
    p_update.add_argument(
        "--baseline", required=True, help="baseline JSON to (re)write"
    )
    p_update.add_argument(
        "--include-timing", action="store_true",
        help="record wall times too (enables --max-slowdown diffs; the "
        "payload is no longer machine-independent)",
    )
    p_update.set_defaults(func=cmd_scoreboard_update)

    p_list = board.add_parser(
        "list", help="enumerate registered corpus families"
    )
    corpus_flags(p_list)
    p_list.set_defaults(func=cmd_scoreboard_list)
