"""Checked-in scoreboard baselines and the regression differ.

A baseline is the deterministic slice of a scoreboard run: per-instance
depth, optimality, winner, and best-known value — never wall-clock
times — keyed by case id, written with sorted keys.  Built from a fixed
``(profile, seed, members)`` triple it reproduces byte-identically on
any machine, so ``git diff`` on the baseline file *is* the solver-
quality diff.

Timing lives in an optional, explicitly requested ``timing`` section
(``update-baseline --include-timing``); the default checked-in artifact
stays deterministic while a locally written timing baseline enables the
``--max-slowdown`` gate.

``diff_against_baseline`` classifies every instance:

* **regression** — depth got worse, or the result lost a previously
  certified optimality proof: exit non-zero, always;
* **violation** — depth below a proven lower bound: exit non-zero (a
  solver returned an impossible result);
* **improvement** — depth got better (or a new proof landed): reported,
  and the caller is told to refresh the baseline;
* **slowdown** — wall time exceeded baseline timing by more than the
  configured factor (only when both sides carry timing);
* **added / removed** — corpus membership drift, reported so a shrunken
  corpus cannot quietly hide a regressed instance.

A schema-version mismatch (see :mod:`repro.service.schema`) makes the
whole comparison invalid — runs under different solver-config schemas
are not comparable, so the diff fails closed instead of reporting
nonsense.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.exceptions import SolverError
from repro.corpus.scoreboard import ScoreboardReport
from repro.service.schema import SOLVER_SCHEMA_VERSION
from repro.utils.fileio import atomic_write_json
from repro.utils.tables import format_table

BASELINE_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Building / loading
# ----------------------------------------------------------------------
def baseline_from_report(
    report: ScoreboardReport, *, include_timing: bool = False
) -> Dict[str, Any]:
    """The baseline payload for ``report`` (deterministic by default)."""
    entries = {
        row.case_id: {
            "family": row.family,
            "depth": row.depth,
            "best_known": row.best_known,
            "optimal": row.optimal,
            "winner": row.winner,
            "lower_bound": row.lower_bound,
        }
        for row in report.rows
    }
    payload: Dict[str, Any] = {
        "type": "scoreboard_baseline",
        "version": BASELINE_FORMAT_VERSION,
        "schema_version": report.schema_version,
        "profile": report.profile,
        "seed": report.seed,
        "members": list(report.members),
        "race": report.race,
        "families": sorted(report.families),
        "entries": entries,
    }
    if include_timing:
        payload["timing"] = {
            row.case_id: round(row.wall_seconds, 6) for row in report.rows
        }
    return payload


def write_baseline(path: Union[str, Path], payload: Dict[str, Any]) -> Path:
    """Atomically write a baseline with sorted keys (byte-stable)."""
    path = Path(path)
    atomic_write_json(path, payload, sort_keys=True)
    return path


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    path = Path(path)
    try:
        with open(path) as stream:
            payload = json.load(stream)
    except OSError as exc:
        raise SolverError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SolverError(f"bad JSON in baseline {path}: {exc}") from exc
    if payload.get("type") != "scoreboard_baseline":
        raise SolverError(
            f"{path} is not a scoreboard baseline "
            f"(type={payload.get('type')!r})"
        )
    if payload.get("version", 0) > BASELINE_FORMAT_VERSION:
        raise SolverError(
            f"baseline {path} has format version {payload['version']}, "
            f"newer than supported {BASELINE_FORMAT_VERSION}"
        )
    return payload


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
@dataclass
class BaselineDiff:
    """Classification of a scoreboard run against a baseline."""

    regressions: List[Dict[str, Any]] = field(default_factory=list)
    violations: List[Dict[str, Any]] = field(default_factory=list)
    improvements: List[Dict[str, Any]] = field(default_factory=list)
    slowdowns: List[Dict[str, Any]] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    schema_mismatch: Optional[str] = None
    config_mismatch: Optional[str] = None
    compared: int = 0

    @property
    def failed(self) -> bool:
        """True when the run must fail the gate."""
        return bool(
            self.regressions
            or self.violations
            or self.removed
            or self.schema_mismatch
            or self.config_mismatch
            or self.slowdowns
        )

    @property
    def clean(self) -> bool:
        """True when nothing at all changed (baseline needs no refresh)."""
        return not (self.failed or self.improvements or self.added)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "compared": self.compared,
            "regressions": self.regressions,
            "violations": self.violations,
            "improvements": self.improvements,
            "slowdowns": self.slowdowns,
            "added": self.added,
            "removed": self.removed,
            "schema_mismatch": self.schema_mismatch,
            "config_mismatch": self.config_mismatch,
            "failed": self.failed,
        }


def diff_against_baseline(
    report: ScoreboardReport,
    baseline: Dict[str, Any],
    *,
    max_slowdown: Optional[float] = None,
) -> BaselineDiff:
    """Classify ``report`` against ``baseline``.

    ``max_slowdown`` gates wall time: an instance slower than
    ``baseline_timing * max_slowdown`` is a slowdown failure (requires
    a baseline written with ``--include-timing``; without one the gate
    is reported as unusable rather than silently passing).
    """
    diff = BaselineDiff()
    if baseline.get("schema_version") != report.schema_version:
        diff.schema_mismatch = (
            f"baseline schema_version={baseline.get('schema_version')!r} "
            f"vs current {report.schema_version} "
            f"(SOLVER_SCHEMA_VERSION={SOLVER_SCHEMA_VERSION}); results "
            "are not comparable — re-run `scoreboard update-baseline`"
        )
        return diff
    for key in ("profile", "seed"):
        if baseline.get(key) != getattr(report, key):
            diff.config_mismatch = (
                f"baseline was built with {key}="
                f"{baseline.get(key)!r}, this run used "
                f"{getattr(report, key)!r}"
            )
            return diff
    if list(baseline.get("members", [])) != list(report.members):
        diff.config_mismatch = (
            f"baseline members {baseline.get('members')!r} != "
            f"run members {list(report.members)!r}"
        )
        return diff

    entries: Dict[str, Dict[str, Any]] = baseline.get("entries", {})
    timing: Dict[str, float] = baseline.get("timing") or {}
    if max_slowdown is not None and not timing:
        diff.config_mismatch = (
            "baseline carries no timing section; write one with "
            "`scoreboard update-baseline --include-timing` before "
            "using --max-slowdown"
        )
        return diff

    seen = set()
    for row in report.rows:
        seen.add(row.case_id)
        entry = entries.get(row.case_id)
        if entry is None:
            diff.added.append(row.case_id)
            continue
        diff.compared += 1
        if row.depth < row.lower_bound:
            diff.violations.append(
                {
                    "case_id": row.case_id,
                    "family": row.family,
                    "depth": row.depth,
                    "lower_bound": row.lower_bound,
                }
            )
        if row.depth > entry["depth"] or (
            entry["optimal"] and not row.optimal
        ):
            diff.regressions.append(
                {
                    "case_id": row.case_id,
                    "family": row.family,
                    "depth": row.depth,
                    "baseline_depth": entry["depth"],
                    "optimal": row.optimal,
                    "baseline_optimal": entry["optimal"],
                }
            )
        elif row.depth < entry["depth"] or (
            row.optimal and not entry["optimal"]
        ):
            diff.improvements.append(
                {
                    "case_id": row.case_id,
                    "family": row.family,
                    "depth": row.depth,
                    "baseline_depth": entry["depth"],
                    "optimal": row.optimal,
                    "baseline_optimal": entry["optimal"],
                }
            )
        if max_slowdown is not None and row.case_id in timing:
            budget = timing[row.case_id] * max_slowdown
            if row.wall_seconds > budget and not row.from_cache:
                diff.slowdowns.append(
                    {
                        "case_id": row.case_id,
                        "family": row.family,
                        "wall_seconds": round(row.wall_seconds, 6),
                        "baseline_seconds": timing[row.case_id],
                        "max_slowdown": max_slowdown,
                    }
                )
    diff.removed = sorted(set(entries) - seen)
    return diff


def format_diff(diff: BaselineDiff) -> str:
    """Human-readable diff summary (the CLI's output)."""
    lines: List[str] = []
    if diff.schema_mismatch:
        lines.append(f"SCHEMA MISMATCH: {diff.schema_mismatch}")
        return "\n".join(lines)
    if diff.config_mismatch:
        lines.append(f"CONFIG MISMATCH: {diff.config_mismatch}")
        return "\n".join(lines)

    def table(title: str, entries: List[Dict[str, Any]]) -> None:
        rows = [
            [
                e["case_id"],
                e["family"],
                e.get("baseline_depth", "-"),
                e.get("depth", "-"),
                e.get("lower_bound", "-"),
            ]
            for e in entries
        ]
        lines.append(
            format_table(
                ["instance", "family", "base", "now", "lower"],
                rows,
                title=title,
            )
        )
        lines.append("")

    if diff.violations:
        table(
            f"LOWER-BOUND VIOLATIONS ({len(diff.violations)}) — a solver "
            "returned an impossible depth",
            diff.violations,
        )
    if diff.regressions:
        table(f"REGRESSIONS ({len(diff.regressions)})", diff.regressions)
    if diff.improvements:
        table(
            f"improvements ({len(diff.improvements)}) — refresh the "
            "baseline to lock them in",
            diff.improvements,
        )
    if diff.slowdowns:
        rows = [
            [
                e["case_id"],
                e["family"],
                f"{e['baseline_seconds']:.3f}s",
                f"{e['wall_seconds']:.3f}s",
                f"{e['max_slowdown']:g}x",
            ]
            for e in diff.slowdowns
        ]
        lines.append(
            format_table(
                ["instance", "family", "base", "now", "limit"],
                rows,
                title=f"SLOWDOWNS ({len(diff.slowdowns)})",
            )
        )
        lines.append("")
    if diff.removed:
        lines.append(
            f"REMOVED from corpus but present in baseline "
            f"({len(diff.removed)}): {', '.join(diff.removed[:8])}"
            + (" ..." if len(diff.removed) > 8 else "")
        )
    if diff.added:
        lines.append(
            f"new instances not in baseline ({len(diff.added)}): "
            f"{', '.join(diff.added[:8])}"
            + (" ..." if len(diff.added) > 8 else "")
        )
    verdict = "FAIL" if diff.failed else "ok"
    lines.append(
        f"scoreboard diff: {diff.compared} compared, "
        f"{len(diff.regressions)} regression(s), "
        f"{len(diff.violations)} violation(s), "
        f"{len(diff.improvements)} improvement(s), "
        f"{len(diff.slowdowns)} slowdown(s) -> {verdict}"
    )
    return "\n".join(lines)
