"""Binary matrix completion: addressing with don't-care vacancies."""

from repro.completion.exact import (
    MaskedEncoder,
    MaskedOutcome,
    masked_minimum_addressing,
)
from repro.completion.heuristic import (
    masked_pack_rows_once,
    masked_row_packing,
)
from repro.completion.masked import (
    MaskedMatrix,
    masked_fooling_number,
    validate_masked_partition,
)

__all__ = [
    "MaskedEncoder",
    "MaskedMatrix",
    "MaskedOutcome",
    "masked_fooling_number",
    "masked_minimum_addressing",
    "masked_pack_rows_once",
    "masked_row_packing",
    "validate_masked_partition",
]
