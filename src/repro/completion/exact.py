"""Exact minimum addressing with don't-cares (binary matrix completion).

The label-based SAT encoding of :mod:`repro.smt.encoder` generalizes
directly: for 1-cells ``(i, j)`` and ``(i', j')`` in distinct rows and
columns,

* sharing a rectangle is forbidden when a cross cell is a hard 0,
* sharing forces any cross cell that is a required 1 into the same
  rectangle,
* don't-care cross cells impose nothing — the rectangle simply covers
  the vacancy.

Label classes are then rectangles whose spans avoid 0s and whose 1-cells
are exactly the class members, so the decoded rectangles may overlap on
don't-cares only — the physical semantics of vacant sites.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.completion.heuristic import masked_row_packing
from repro.completion.masked import (
    MaskedMatrix,
    masked_fooling_number,
    validate_masked_partition,
)
from repro.core.exceptions import EncodingError, SolverError
from repro.core.partition import Partition
from repro.sat.cardinality import exactly_one
from repro.sat.solver import CdclSolver, SolveStatus
from repro.solvers.row_packing import PackingOptions
from repro.utils.rng import RngLike
from repro.utils.timing import Deadline

Cell = Tuple[int, int]


class MaskedEncoder:
    """One-hot encoding of "masked depth <= bound"."""

    def __init__(
        self,
        masked: MaskedMatrix,
        bound: int,
        *,
        symmetry: str = "precedence",
        amo_encoding: str = "auto",
    ) -> None:
        if bound < 0:
            raise EncodingError(f"bound must be >= 0, got {bound}")
        self.masked = masked
        self.cells: List[Cell] = list(masked.ones())
        self.bound = bound
        self.solver = CdclSolver()
        self._trivially_unsat = False

        if not self.cells:
            return
        if bound == 0:
            self._trivially_unsat = True
            return

        ones = masked.ones_matrix
        free = masked.free_matrix()
        index = {cell: t for t, cell in enumerate(self.cells)}
        num_cells = len(self.cells)

        self._vars = [
            [self.solver.new_var() for _ in range(bound)]
            for _ in range(num_cells)
        ]
        for t in range(num_cells):
            literals = self._vars[t]
            if symmetry in ("restricted", "precedence"):
                usable = literals[: min(bound, t + 1)]
                for banned in literals[len(usable) :]:
                    self.solver.add_clause([-banned])
            else:
                usable = literals
            exactly_one(self.solver, usable, encoding=amo_encoding)
        if symmetry == "precedence":
            for t in range(num_cells):
                for k in range(1, min(bound, t + 1)):
                    clause = [-self._vars[t][k]]
                    clause.extend(
                        self._vars[s][k - 1] for s in range(k - 1, t)
                    )
                    self.solver.add_clause(clause)

        for a in range(num_cells):
            i, j = self.cells[a]
            for b in range(a + 1, num_cells):
                i2, j2 = self.cells[b]
                if i == i2 or j == j2:
                    continue
                crosses = ((i, j2), (i2, j))
                if any(free[x, y] == 0 for x, y in crosses):
                    for k in range(bound):
                        self.solver.add_clause(
                            [-self._vars[a][k], -self._vars[b][k]]
                        )
                    continue
                for x, y in crosses:
                    if ones[x, y] == 1:
                        cross_index = index[(x, y)]
                        for k in range(bound):
                            self.solver.add_clause(
                                [
                                    -self._vars[a][k],
                                    -self._vars[b][k],
                                    self._vars[cross_index][k],
                                ]
                            )

    def narrow_to(self, bound: int) -> None:
        if bound > self.bound:
            raise EncodingError(
                f"cannot widen from {self.bound} to {bound}"
            )
        if not self.cells:
            self.bound = bound
            return
        if bound == 0:
            self._trivially_unsat = True
            self.bound = 0
            return
        for t in range(len(self.cells)):
            for k in range(bound, self.bound):
                self.solver.add_clause([-self._vars[t][k]])
        self.bound = bound

    def solve(
        self,
        *,
        conflict_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SolveStatus:
        if not self.cells:
            return SolveStatus.SAT
        if self._trivially_unsat:
            return SolveStatus.UNSAT
        return self.solver.solve(
            conflict_budget=conflict_budget, time_budget=time_budget
        )

    def extract_partition(self) -> Partition:
        if not self.cells:
            return Partition([], self.masked.shape)
        labels: Dict[Cell, int] = {}
        for t, cell in enumerate(self.cells):
            assigned = [
                k
                for k in range(self.bound)
                if self.solver.model_value(self._vars[t][k])
            ]
            if len(assigned) != 1:
                raise SolverError(
                    f"cell {cell} has {len(assigned)} labels in the model"
                )
            labels[cell] = assigned[0]
        partition = Partition.from_assignment(self.masked.ones_matrix, labels)
        validate_masked_partition(self.masked, partition)
        return partition


@dataclass
class MaskedOutcome:
    """Result of :func:`masked_minimum_addressing`."""

    partition: Partition
    proved_optimal: bool
    lower_bound: int
    heuristic_depth: int
    queries: List[Tuple[int, str, float]] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return self.partition.depth


def masked_minimum_addressing(
    masked: MaskedMatrix,
    *,
    trials: int = 32,
    seed: RngLike = None,
    time_budget: Optional[float] = None,
    symmetry: str = "precedence",
) -> MaskedOutcome:
    """SAP-style descent for the masked problem.

    Heuristic upper bound from masked row packing, fooling-set lower
    bound (Eq. 3's rank bound is unsound under don't-cares), incremental
    SAT descent in between.
    """
    heuristic = masked_row_packing(
        masked, options=PackingOptions(trials=trials, seed=seed)
    )
    lower = masked_fooling_number(masked)
    deadline = Deadline(time_budget)
    best = heuristic
    queries: List[Tuple[int, str, float]] = []
    proved = best.depth <= lower

    encoder: Optional[MaskedEncoder] = None
    bound = best.depth - 1
    while not proved and bound >= lower:
        if deadline.expired():
            break
        started = time.perf_counter()
        if encoder is None:
            encoder = MaskedEncoder(masked, bound, symmetry=symmetry)
        else:
            encoder.narrow_to(bound)
        status = encoder.solve(time_budget=deadline.remaining())
        queries.append(
            (bound, status.value, time.perf_counter() - started)
        )
        if status is SolveStatus.SAT:
            best = encoder.extract_partition()
            bound = best.depth - 1
        elif status is SolveStatus.UNSAT:
            proved = True
        else:
            break
    else:
        proved = True

    return MaskedOutcome(
        partition=best,
        proved_optimal=proved,
        lower_bound=lower,
        heuristic_depth=heuristic.depth,
        queries=queries,
    )
