"""Row-packing heuristic adapted to don't-cares.

Same skeleton as Algorithm 2, with two changes:

* a basis vector may grow into a row when it fits inside the row's
  *still-coverable* sites (uncovered 1s plus don't-cares) and covers at
  least one required 1 — don't-cares absorb the mismatch;
* coverage accounting only tracks required 1s; don't-cares may be hit
  repeatedly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.completion.masked import (
    MaskedMatrix,
    validate_masked_partition,
)
from repro.core.exceptions import SolverError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.solvers.row_packing import PackingOptions
from repro.utils.rng import ensure_rng


def masked_pack_rows_once(
    masked: MaskedMatrix,
    order,
    *,
    basis_update: bool = True,
) -> Partition:
    """One pass of masked row packing over rows in ``order``."""
    num_rows, _ = masked.shape
    if sorted(order) != list(range(num_rows)):
        raise SolverError(f"{order!r} is not a permutation of the rows")

    ones = masked.ones_matrix
    dont_care = masked.dont_care_matrix

    basis: List[int] = []
    rect_rows: List[int] = []

    for i in order:
        required = ones.row_mask(i)
        if required == 0:
            continue
        free_extra = dont_care.row_mask(i)
        for j, vector in enumerate(basis):
            coverable = required | free_extra
            if (
                vector
                and vector & ~coverable == 0
                and vector & required
            ):
                rect_rows[j] |= 1 << i
                required &= ~vector
                if required == 0:
                    break
        if required == 0:
            continue
        new_rows = 1 << i
        if basis_update:
            for k, vector in enumerate(basis):
                if vector and required & ~vector == 0 and vector != required:
                    basis[k] = vector & ~required
                    new_rows |= rect_rows[k]
        basis.append(required)
        rect_rows.append(new_rows)

    rects = [
        Rectangle(rows, cols)
        for rows, cols in zip(rect_rows, basis)
        if rows and cols
    ]
    partition = Partition(rects, masked.shape)
    validate_masked_partition(masked, partition)
    return partition


def masked_row_packing(
    masked: MaskedMatrix,
    *,
    options: Optional[PackingOptions] = None,
    **kwargs,
) -> Partition:
    """Best-of-trials masked packing (matrix and transpose)."""
    if options is None:
        options = PackingOptions(**kwargs)
    elif kwargs:
        raise SolverError("pass either options or keyword arguments, not both")

    rng = ensure_rng(options.seed)
    candidates = [(masked, False)]
    if options.use_transpose:
        transposed = MaskedMatrix(
            masked.ones_matrix.transpose(),
            masked.dont_care_matrix.transpose(),
        )
        candidates.append((transposed, True))

    best: Optional[Partition] = None
    for candidate, transposed in candidates:
        num_rows = candidate.shape[0]
        identity = list(range(num_rows))
        for _ in range(options.trials):
            if options.ordering == "given":
                order = identity
            elif options.ordering == "sparse_first":
                order = sorted(
                    identity,
                    key=lambda i: candidate.ones_matrix.row_mask(i).bit_count(),
                )
            else:
                order = identity[:]
                rng.shuffle(order)
            partition = masked_pack_rows_once(
                candidate, order, basis_update=options.basis_update
            )
            if transposed:
                partition = partition.transpose()
            if best is None or partition.depth < best.depth:
                best = partition
    assert best is not None
    validate_masked_partition(masked, best)
    return best
