"""Masked (don't-care) matrices for addressing with vacancies.

Section VI: vacant sites "can be represented as don't cares in a matrix,
which may be leveraged to reduce rectangles" — binary matrix completion
rather than factorization.  A :class:`MaskedMatrix` partitions the grid
into required 1s, forbidden 0s, and free don't-cares; a valid addressing
covers every 1 exactly once, never touches a 0, and may cover don't-
cares any number of times (including by overlapping rectangles).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError, InvalidPartitionError
from repro.core.fooling import max_clique_mask
from repro.core.partition import Partition
from repro.utils.bitops import popcount

Cell = Tuple[int, int]


class MaskedMatrix:
    """A {0, 1, don't-care} matrix."""

    __slots__ = ("_ones", "_dont_care")

    def __init__(self, ones: BinaryMatrix, dont_care: BinaryMatrix) -> None:
        if ones.shape != dont_care.shape:
            raise InvalidMatrixError(
                f"ones shape {ones.shape} != don't-care shape "
                f"{dont_care.shape}"
            )
        overlap = ones.elementwise_and(dont_care)
        if not overlap.is_zero():
            cell = next(overlap.ones())
            raise InvalidMatrixError(
                f"cell {cell} is both a required 1 and a don't-care"
            )
        self._ones = ones
        self._dont_care = dont_care

    @classmethod
    def from_target_and_vacancies(
        cls, target: BinaryMatrix, vacancies: BinaryMatrix
    ) -> "MaskedMatrix":
        """Target pattern on an array whose vacant sites are free."""
        stray = target.elementwise_and(vacancies)
        if not stray.is_zero():
            cell = next(stray.ones())
            raise InvalidMatrixError(
                f"target addresses vacant site {cell}"
            )
        return cls(target, vacancies)

    @classmethod
    def from_strings(cls, lines) -> "MaskedMatrix":
        """Parse rows of '0', '1', '*' characters."""
        ones_rows: List[str] = []
        dc_rows: List[str] = []
        for line in lines:
            cleaned = line.replace(" ", "").replace("_", "")
            for char in cleaned:
                if char not in "01*":
                    raise InvalidMatrixError(
                        f"unexpected character {char!r} in masked matrix"
                    )
            ones_rows.append(
                "".join("1" if c == "1" else "0" for c in cleaned)
            )
            dc_rows.append(
                "".join("1" if c == "*" else "0" for c in cleaned)
            )
        return cls(
            BinaryMatrix.from_strings(ones_rows),
            BinaryMatrix.from_strings(dc_rows),
        )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._ones.shape

    @property
    def ones_matrix(self) -> BinaryMatrix:
        return self._ones

    @property
    def dont_care_matrix(self) -> BinaryMatrix:
        return self._dont_care

    def free_matrix(self) -> BinaryMatrix:
        """Sites a rectangle may cover: 1s union don't-cares."""
        return self._ones.elementwise_or(self._dont_care)

    def value(self, i: int, j: int) -> str:
        if self._ones[i, j]:
            return "1"
        if self._dont_care[i, j]:
            return "*"
        return "0"

    def ones(self) -> Iterator[Cell]:
        return self._ones.ones()

    def to_strings(self) -> List[str]:
        return [
            "".join(self.value(i, j) for j in range(self.shape[1]))
            for i in range(self.shape[0])
        ]

    def __repr__(self) -> str:
        return (
            f"MaskedMatrix({self.shape[0]}x{self.shape[1]}, "
            f"ones={self._ones.count_ones()}, "
            f"dont_cares={self._dont_care.count_ones()})"
        )


def validate_masked_partition(
    masked: MaskedMatrix, partition: Partition
) -> None:
    """Raise unless ``partition`` is a valid addressing of ``masked``:
    1s covered exactly once, 0s never, don't-cares unconstrained."""
    if partition.shape != masked.shape:
        raise InvalidPartitionError(
            f"partition shape {partition.shape} != masked shape "
            f"{masked.shape}"
        )
    num_rows, _ = masked.shape
    counts = [
        [0] * masked.shape[1] for _ in range(num_rows)
    ]
    for rect in partition:
        for i, j in rect.cells():
            counts[i][j] += 1
    for i in range(masked.shape[0]):
        for j in range(masked.shape[1]):
            value = masked.value(i, j)
            count = counts[i][j]
            if value == "1" and count != 1:
                raise InvalidPartitionError(
                    f"required cell ({i}, {j}) covered {count} times"
                )
            if value == "0" and count != 0:
                raise InvalidPartitionError(
                    f"forbidden cell ({i}, {j}) covered {count} times"
                )


def masked_fooling_number(masked: MaskedMatrix, *, max_cells: int = 96) -> int:
    """Lower bound on the masked rectangle count via fooling sets.

    Two 1-cells in distinct rows and columns can never share a rectangle
    when one of their cross cells is a hard 0 (don't-cares do not block).
    The maximum such pairwise-incompatible set lower-bounds the depth.
    Exact up to ``max_cells`` 1-cells, greedy beyond.  (The real-rank
    bound of Eq. 3 is *not* sound under don't-cares, so this is the bound
    the masked solver descends to.)
    """
    cells = list(masked.ones())
    if not cells:
        return 0
    free = masked.free_matrix()
    n = len(cells)

    def incompatible(a: Cell, b: Cell) -> bool:
        (i, j), (i2, j2) = a, b
        if i == i2 or j == j2:
            return False
        return free[i, j2] == 0 or free[i2, j] == 0

    adjacency = [0] * n
    for a in range(n):
        for b in range(a + 1, n):
            if incompatible(cells[a], cells[b]):
                adjacency[a] |= 1 << b
                adjacency[b] |= 1 << a
    if n > max_cells:
        # Greedy clique: still a valid lower bound.
        chosen = 0
        candidates = (1 << n) - 1
        order = sorted(range(n), key=lambda v: -popcount(adjacency[v]))
        for v in order:
            if (candidates >> v) & 1:
                chosen |= 1 << v
                candidates &= adjacency[v]
        return popcount(chosen)
    return popcount(max_clique_mask(adjacency))
