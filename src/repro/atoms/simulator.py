"""Behavioural simulator for AOD addressing schedules.

Executes a schedule against a :class:`~repro.atoms.array.QubitArray` by
accumulating Rz phase on every *occupied* illuminated site, then judges
the run against a target pattern:

* every target atom must receive exactly one pulse (accumulated phase
  ``theta``) — double addressing corrupts the intended rotation;
* every non-target atom must receive none;
* vacant sites may be illuminated arbitrarily often (nothing is there).

This enforces precisely the contract that makes depth-optimal addressing
an EBMF problem (plus the don't-care relaxation of Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.atoms.array import QubitArray
from repro.atoms.schedule import AddressingSchedule
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ScheduleError

Site = Tuple[int, int]


@dataclass
class AddressingReport:
    """Verdict of :meth:`AddressingSimulator.verify`."""

    ok: bool
    double_addressed: List[Site] = field(default_factory=list)
    missed: List[Site] = field(default_factory=list)
    spurious: List[Site] = field(default_factory=list)
    pulses_per_site: Dict[Site, int] = field(default_factory=dict)
    depth: int = 0

    def summary(self) -> str:
        if self.ok:
            return f"OK: depth {self.depth}, all targets addressed exactly once"
        return (
            f"FAILED: {len(self.double_addressed)} double-addressed, "
            f"{len(self.missed)} missed, {len(self.spurious)} spurious"
        )


class AddressingSimulator:
    """Phase-accumulation simulation of a schedule on an atom array."""

    def __init__(self, array: QubitArray) -> None:
        self._array = array

    @property
    def array(self) -> QubitArray:
        return self._array

    def run(self, schedule: AddressingSchedule) -> Dict[Site, float]:
        """Accumulated phase per occupied site after the whole schedule."""
        if schedule.shape != self._array.shape:
            raise ScheduleError(
                f"schedule shape {schedule.shape} != array shape "
                f"{self._array.shape}"
            )
        phases: Dict[Site, float] = {
            site: 0.0 for site in self._array.atoms()
        }
        for operation in schedule:
            theta = operation.pulse.theta
            for site in operation.configuration.addressed_sites():
                if site in phases:
                    phases[site] += theta
        return phases

    def pulse_counts(self, schedule: AddressingSchedule) -> Dict[Site, int]:
        """Number of pulses received per occupied site."""
        if schedule.shape != self._array.shape:
            raise ScheduleError(
                f"schedule shape {schedule.shape} != array shape "
                f"{self._array.shape}"
            )
        counts: Dict[Site, int] = {site: 0 for site in self._array.atoms()}
        for operation in schedule:
            for site in operation.configuration.addressed_sites():
                if site in counts:
                    counts[site] += 1
        return counts

    def verify(
        self,
        schedule: AddressingSchedule,
        target: BinaryMatrix,
    ) -> AddressingReport:
        """Check that ``schedule`` addresses exactly the target atoms."""
        self._array.check_pattern(target)
        counts = self.pulse_counts(schedule)
        double_addressed: List[Site] = []
        missed: List[Site] = []
        spurious: List[Site] = []
        for site, count in sorted(counts.items()):
            wanted = target[site[0], site[1]] == 1
            if wanted and count == 0:
                missed.append(site)
            elif wanted and count > 1:
                double_addressed.append(site)
            elif not wanted and count > 0:
                spurious.append(site)
        ok = not (double_addressed or missed or spurious)
        return AddressingReport(
            ok=ok,
            double_addressed=double_addressed,
            missed=missed,
            spurious=spurious,
            pulses_per_site=counts,
            depth=schedule.depth,
        )
