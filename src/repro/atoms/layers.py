"""Multi-layer compilation: a sequence of addressing patterns.

A quantum circuit induces a *sequence* of single-qubit-gate layers, each
with its own target pattern (and possibly its own rotation angle).  Each
layer compiles independently — rectangles cannot be shared across layers
because phases differ — but the compiler aggregates statistics and can
reorder rectangles inside each layer for tone reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.atoms.array import QubitArray
from repro.atoms.compiler import CompilationResult, compile_addressing
from repro.atoms.cost import ScheduleCostModel, reorder_for_tone_reuse
from repro.atoms.schedule import AddressingSchedule
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ScheduleError
from repro.utils.rng import RngLike


@dataclass
class LayerSpec:
    """One circuit layer: which atoms get Rz(theta)."""

    target: BinaryMatrix
    theta: float = 1.0


@dataclass
class CircuitCompilation:
    """Result of :func:`compile_layers`."""

    layers: List[CompilationResult]
    schedules: List[AddressingSchedule]

    @property
    def total_depth(self) -> int:
        return sum(schedule.depth for schedule in self.schedules)

    @property
    def all_proved_optimal(self) -> bool:
        return all(layer.proved_optimal for layer in self.layers)

    def duration(self, model: Optional[ScheduleCostModel] = None) -> float:
        if model is None:
            model = ScheduleCostModel()
        return sum(model.duration(schedule) for schedule in self.schedules)


def compile_layers(
    array: QubitArray,
    layers: Sequence[LayerSpec],
    *,
    strategy: str = "sap",
    exploit_vacancies: bool = False,
    trials: int = 32,
    seed: RngLike = None,
    time_budget_per_layer: Optional[float] = None,
    tone_reuse: bool = True,
) -> CircuitCompilation:
    """Compile every layer and (optionally) reorder for tone reuse.

    The per-layer time budget keeps long circuits responsive; each layer
    is verified behaviourally by :func:`compile_addressing` before being
    accepted.
    """
    if not layers:
        raise ScheduleError("circuit has no layers")
    results: List[CompilationResult] = []
    schedules: List[AddressingSchedule] = []
    for index, layer in enumerate(layers):
        result = compile_addressing(
            array,
            layer.target,
            theta=layer.theta,
            strategy=strategy,
            exploit_vacancies=exploit_vacancies,
            trials=trials,
            seed=seed if seed is None else (hash((index, str(seed))) & 0xFFFF),
            time_budget=time_budget_per_layer,
        )
        schedule = result.schedule
        if tone_reuse:
            schedule = reorder_for_tone_reuse(schedule)
        results.append(result)
        schedules.append(schedule)
    return CircuitCompilation(layers=results, schedules=schedules)


def layers_from_patterns(
    patterns: Sequence[BinaryMatrix], *, theta: float = 1.0
) -> List[LayerSpec]:
    """Convenience: uniform-angle layers from raw patterns."""
    return [LayerSpec(target=pattern, theta=theta) for pattern in patterns]
