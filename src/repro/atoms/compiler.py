"""Pattern -> schedule compilation: the end-to-end user entry point.

``compile_addressing`` turns "apply Rz(theta) to this set of qubits" into
a verified, depth-minimized AOD schedule, choosing between the row
packing heuristic (fast) and the full SAP pipeline (optimal).  On arrays
with vacancies it can optionally exploit them as don't-cares (Section VI
future work) via :mod:`repro.completion`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.atoms.array import QubitArray
from repro.atoms.schedule import AddressingSchedule
from repro.atoms.simulator import AddressingSimulator
from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ScheduleError
from repro.core.partition import Partition
from repro.solvers.row_packing import PackingOptions, row_packing
from repro.solvers.sap import SapOptions, sap_solve
from repro.utils.rng import RngLike

STRATEGIES = ("packing", "sap")


@dataclass
class CompilationResult:
    """A compiled schedule plus the artifacts behind it."""

    schedule: AddressingSchedule
    partition: Partition
    proved_optimal: bool
    used_vacancies: bool

    @property
    def depth(self) -> int:
        return self.schedule.depth


def compile_addressing(
    array: QubitArray,
    target: BinaryMatrix,
    *,
    theta: float = 1.0,
    strategy: str = "sap",
    exploit_vacancies: bool = False,
    trials: int = 32,
    seed: RngLike = None,
    time_budget: Optional[float] = None,
) -> CompilationResult:
    """Compile and verify an addressing schedule for ``target``.

    ``strategy='sap'`` proves depth optimality when the budget allows;
    ``strategy='packing'`` returns the heuristic result immediately.
    With ``exploit_vacancies=True`` the compiler may illuminate vacant
    sites to merge rectangles (never a correctness risk — verified by
    simulation before returning).
    """
    if strategy not in STRATEGIES:
        raise ScheduleError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    array.check_pattern(target)

    used_vacancies = False
    proved_optimal = False
    if exploit_vacancies and array.num_atoms < (
        array.num_rows * array.num_cols
    ):
        # Deferred import: completion builds on the same solver stack.
        from repro.completion import MaskedMatrix, masked_minimum_addressing

        masked = MaskedMatrix.from_target_and_vacancies(
            target, array.occupancy.complement()
        )
        outcome = masked_minimum_addressing(
            masked, trials=trials, seed=seed, time_budget=time_budget
        )
        partition = outcome.partition
        proved_optimal = outcome.proved_optimal
        used_vacancies = True
    elif strategy == "sap":
        result = sap_solve(
            matrix=target,
            options=SapOptions(
                trials=trials, seed=seed, time_budget=time_budget
            ),
        )
        partition = result.partition
        proved_optimal = result.proved_optimal
    else:
        partition = row_packing(
            target, options=PackingOptions(trials=trials, seed=seed)
        )

    schedule = AddressingSchedule.from_partition(partition, theta=theta)
    report = AddressingSimulator(array).verify(schedule, target)
    if not report.ok:
        raise ScheduleError(
            f"compiled schedule failed verification: {report.summary()}"
        )
    return CompilationResult(
        schedule=schedule,
        partition=partition,
        proved_optimal=proved_optimal,
        used_vacancies=used_vacancies,
    )
