"""Schedule legalization under AOD hardware constraints.

An ideal (binary-rank-optimal) schedule may activate more tones per
axis, or more closely spaced lines, than the deflector supports.  The
legalizer splits each offending rectangle into a product of legal
sub-rectangles:

1. each axis' index set is grouped greedily (first-fit over sorted
   indices) so that every group respects the axis tone cap and minimum
   spacing,
2. the rectangle becomes the cross product of row groups and column
   groups (still a disjoint cover of exactly the same sites),
3. if a total-tone budget binds, the larger axis group is chunked
   further until every emitted configuration fits.

The output schedule addresses exactly the same atoms exactly once —
legalization trades depth, never correctness — and the depth inflation
relative to the ideal schedule is the quantity the ablation benchmark
reports (what the paper's depth-optimality is worth under real control
electronics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.atoms.aod import AodConfiguration
from repro.atoms.constraints import AodConstraints
from repro.atoms.schedule import AddressingOperation, AddressingSchedule
from repro.core.exceptions import ScheduleError


@dataclass
class LegalizationResult:
    """A legalized schedule plus bookkeeping about the cost."""

    schedule: AddressingSchedule
    original_depth: int
    split_operations: int  # how many input operations needed splitting

    @property
    def depth(self) -> int:
        return self.schedule.depth

    @property
    def inflation(self) -> float:
        """Legal depth / ideal depth (1.0 = constraints were free)."""
        if self.original_depth == 0:
            return 1.0
        return self.depth / self.original_depth


def split_axis(
    indices: Sequence[int],
    *,
    max_tones: int | None = None,
    min_spacing: int = 1,
) -> List[List[int]]:
    """Group sorted indices into constraint-respecting tone groups.

    First-fit over ascending indices: each index joins the first group
    whose last member is at least ``min_spacing`` away and which has
    room under ``max_tones``.  For the spacing constraint alone this is
    the optimal (interval-graph) coloring; the cap can only force
    ``ceil(n / max_tones)`` groups, which first-fit also achieves.
    """
    if max_tones is not None and max_tones < 1:
        raise ScheduleError(f"max_tones must be >= 1, got {max_tones}")
    if min_spacing < 1:
        raise ScheduleError(f"min_spacing must be >= 1, got {min_spacing}")
    groups: List[List[int]] = []
    for index in sorted(indices):
        placed = False
        for group in groups:
            if max_tones is not None and len(group) >= max_tones:
                continue
            if index - group[-1] < min_spacing:
                continue
            group.append(index)
            placed = True
            break
        if not placed:
            groups.append([index])
    return groups


def _chunk(indices: Sequence[int], size: int) -> List[List[int]]:
    return [
        list(indices[start : start + size])
        for start in range(0, len(indices), size)
    ]


def legalize_configuration(
    config: AodConfiguration, constraints: AodConstraints
) -> List[AodConfiguration]:
    """Split one configuration into legal ones covering the same sites."""
    if constraints.is_legal(config):
        return [config]
    row_groups = split_axis(
        sorted(config.rows),
        max_tones=constraints.max_row_tones,
        min_spacing=constraints.min_row_spacing,
    )
    col_groups = split_axis(
        sorted(config.cols),
        max_tones=constraints.max_col_tones,
        min_spacing=constraints.min_col_spacing,
    )
    pieces: List[AodConfiguration] = []
    budget = constraints.max_total_tones
    for rows in row_groups:
        for cols in col_groups:
            if budget is None or len(rows) + len(cols) <= budget:
                pieces.append(AodConfiguration(rows, cols))
                continue
            pieces.extend(
                AodConfiguration(row_piece, col_piece)
                for row_piece, col_piece in _fit_budget(rows, cols, budget)
            )
    return pieces


def _fit_budget(
    rows: List[int], cols: List[int], budget: int
) -> List[tuple]:
    """Split a (rows x cols) block into pieces with ``|r|+|c| <= budget``.

    Keeps the smaller axis whole when it leaves room for at least one
    tone on the other axis; otherwise chunks both axes around
    ``budget // 2``.
    """
    if len(rows) <= len(cols):
        small, large = rows, cols
        assemble = lambda s, l: (s, l)  # noqa: E731 - tiny local adapter
    else:
        small, large = cols, rows
        assemble = lambda s, l: (l, s)  # noqa: E731
    room = budget - len(small)
    if room >= 1:
        return [assemble(small, piece) for piece in _chunk(large, room)]
    # Even the smaller axis alone saturates the budget: chunk both.
    half = max(1, budget // 2)
    pieces = []
    for row_piece in _chunk(rows, half):
        for col_piece in _chunk(cols, max(1, budget - len(row_piece))):
            pieces.append((row_piece, col_piece))
    return pieces


def legalize_schedule(
    schedule: AddressingSchedule, constraints: AodConstraints
) -> LegalizationResult:
    """Rewrite ``schedule`` so every operation satisfies ``constraints``.

    Raises :class:`~repro.core.exceptions.ScheduleError` if the result
    still violates the constraints (cannot happen for satisfiable
    limits; guards against inconsistent constraint objects).
    """
    operations: List[AddressingOperation] = []
    split_count = 0
    for operation in schedule:
        pieces = legalize_configuration(
            operation.configuration, constraints
        )
        if len(pieces) > 1:
            split_count += 1
        operations.extend(
            AddressingOperation(piece, operation.pulse) for piece in pieces
        )
    legal = AddressingSchedule(operations, schedule.shape)
    remaining = constraints.check_schedule(legal)
    if remaining:
        step, message = remaining[0]
        raise ScheduleError(
            f"legalization left a violation at step {step}: {message}"
        )
    return LegalizationResult(
        schedule=legal,
        original_depth=schedule.depth,
        split_operations=split_count,
    )
