"""Acousto-optic deflector (AOD) configurations.

A 2D AOD drives one RF tone per active row and per active column; the
deflected beams overlap exactly on the *product* of the active rows and
columns (Figure 1a).  One configuration therefore realizes one
combinatorial rectangle — this is the physical contract the whole paper
rests on, and the only hardware behaviour the simulator assumes.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Tuple

from repro.core.exceptions import ScheduleError
from repro.core.rectangle import Rectangle


class AodConfiguration:
    """A set of active row tones and column tones."""

    __slots__ = ("_rows", "_cols")

    def __init__(self, rows: Iterable[int], cols: Iterable[int]) -> None:
        row_set = frozenset(rows)
        col_set = frozenset(cols)
        if not row_set or not col_set:
            raise ScheduleError(
                "an AOD configuration needs at least one row and one "
                "column tone"
            )
        if any(r < 0 for r in row_set) or any(c < 0 for c in col_set):
            raise ScheduleError("tone indices must be non-negative")
        self._rows = row_set
        self._cols = col_set

    @classmethod
    def from_rectangle(cls, rectangle: Rectangle) -> "AodConfiguration":
        return cls(rectangle.rows, rectangle.cols)

    # ------------------------------------------------------------------
    @property
    def rows(self) -> FrozenSet[int]:
        return self._rows

    @property
    def cols(self) -> FrozenSet[int]:
        return self._cols

    @property
    def num_tones(self) -> int:
        """Control cost: one RF tone per active row/column."""
        return len(self._rows) + len(self._cols)

    def addressed_sites(self) -> Iterator[Tuple[int, int]]:
        """All illuminated sites: the row x column product."""
        for i in sorted(self._rows):
            for j in sorted(self._cols):
                yield (i, j)

    def addresses(self, i: int, j: int) -> bool:
        return i in self._rows and j in self._cols

    def to_rectangle(self) -> Rectangle:
        return Rectangle.from_sets(self._rows, self._cols)

    def fits(self, num_rows: int, num_cols: int) -> bool:
        return (
            max(self._rows) < num_rows and max(self._cols) < num_cols
        )

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AodConfiguration):
            return NotImplemented
        return self._rows == other._rows and self._cols == other._cols

    def __hash__(self) -> int:
        return hash((self._rows, self._cols))

    def __repr__(self) -> str:
        return (
            f"AodConfiguration(rows={sorted(self._rows)}, "
            f"cols={sorted(self._cols)})"
        )
