"""Neutral-atom substrate: arrays, AOD configurations, schedules, simulation."""

from repro.atoms.aod import AodConfiguration
from repro.atoms.array import QubitArray
from repro.atoms.constraints import AodConstraints
from repro.atoms.legalize import (
    LegalizationResult,
    legalize_configuration,
    legalize_schedule,
    split_axis,
)
from repro.atoms.compiler import (
    STRATEGIES,
    CompilationResult,
    compile_addressing,
)
from repro.atoms.cost import ScheduleCostModel, reorder_for_tone_reuse
from repro.atoms.layers import (
    CircuitCompilation,
    LayerSpec,
    compile_layers,
    layers_from_patterns,
)
from repro.atoms.schedule import (
    AddressingOperation,
    AddressingSchedule,
    RzPulse,
)
from repro.atoms.simulator import AddressingReport, AddressingSimulator

__all__ = [
    "AddressingOperation",
    "AddressingReport",
    "AddressingSchedule",
    "AddressingSimulator",
    "AodConfiguration",
    "AodConstraints",
    "LegalizationResult",
    "legalize_configuration",
    "legalize_schedule",
    "split_axis",
    "CircuitCompilation",
    "CompilationResult",
    "LayerSpec",
    "compile_layers",
    "layers_from_patterns",
    "QubitArray",
    "RzPulse",
    "STRATEGIES",
    "ScheduleCostModel",
    "compile_addressing",
    "reorder_for_tone_reuse",
]
