"""Addressing schedules: sequences of pulsed AOD configurations.

The depth of a schedule — the number of AOD reconfigurations — is the
quantity the paper minimizes: it equals the number of rectangles in the
underlying EBMF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.atoms.aod import AodConfiguration
from repro.core.exceptions import ScheduleError
from repro.core.partition import Partition


@dataclass(frozen=True)
class RzPulse:
    """A global Rz(theta) pulse routed through the AOD."""

    theta: float

    def __post_init__(self) -> None:
        if not isinstance(self.theta, (int, float)):
            raise ScheduleError(f"theta must be numeric, got {self.theta!r}")


@dataclass(frozen=True)
class AddressingOperation:
    """One step: configure the AOD, fire one pulse."""

    configuration: AodConfiguration
    pulse: RzPulse


class AddressingSchedule:
    """An ordered list of addressing operations over a fixed array shape."""

    def __init__(
        self,
        operations: Sequence[AddressingOperation],
        shape: Tuple[int, int],
    ) -> None:
        num_rows, num_cols = shape
        ops = list(operations)
        for index, op in enumerate(ops):
            if not op.configuration.fits(num_rows, num_cols):
                raise ScheduleError(
                    f"operation {index} addresses outside the "
                    f"{num_rows}x{num_cols} array"
                )
        self._operations = ops
        self._shape = (num_rows, num_cols)

    @classmethod
    def from_partition(
        cls,
        partition: Partition,
        *,
        theta: float,
    ) -> "AddressingSchedule":
        """Compile an EBMF into a schedule: one pulse per rectangle."""
        operations = [
            AddressingOperation(
                AodConfiguration.from_rectangle(rect), RzPulse(theta)
            )
            for rect in partition
        ]
        return cls(operations, partition.shape)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def operations(self) -> List[AddressingOperation]:
        return list(self._operations)

    @property
    def depth(self) -> int:
        return len(self._operations)

    @property
    def total_tones(self) -> int:
        """Aggregate control cost: sum of active tones over all steps."""
        return sum(op.configuration.num_tones for op in self._operations)

    def __iter__(self) -> Iterator[AddressingOperation]:
        return iter(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __repr__(self) -> str:
        return f"AddressingSchedule(depth={self.depth}, shape={self._shape})"
