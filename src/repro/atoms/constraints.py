"""Physical constraint model for 2D AOD configurations.

The EBMF abstraction treats any row/column product as one addressing
step.  Real acousto-optic deflectors add RF-side restrictions (cf. the
hardware discussion in Bluvstein et al. and Graham et al.):

* a bounded number of simultaneous tones per axis (RF synthesizer
  channels / total diffraction efficiency),
* a minimum spacing between active rows (or columns): neighbouring
  tones produce spots too close to resolve without crosstalk,
* a total-tone budget across both axes (RF power routed into one AOD).

:class:`AodConstraints` captures these; the legalizer in
:mod:`repro.atoms.legalize` splits an ideal schedule into one obeying
them, quantifying the extra depth the hardware limits impose on top of
the binary-rank optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.atoms.aod import AodConfiguration
from repro.atoms.schedule import AddressingSchedule
from repro.core.exceptions import ScheduleError


@dataclass(frozen=True)
class AodConstraints:
    """Hardware limits on a single AOD configuration.

    ``None`` disables a limit; spacings of 1 (adjacent lines allowed)
    are the unconstrained default.  ``max_total_tones`` bounds
    ``|rows| + |cols|``, the number of RF tones driving the deflector.
    """

    max_row_tones: Optional[int] = None
    max_col_tones: Optional[int] = None
    min_row_spacing: int = 1
    min_col_spacing: int = 1
    max_total_tones: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_row_tones", "max_col_tones", "max_total_tones"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ScheduleError(f"{name} must be >= 1, got {value}")
        for name in ("min_row_spacing", "min_col_spacing"):
            value = getattr(self, name)
            if value < 1:
                raise ScheduleError(f"{name} must be >= 1, got {value}")
        if (
            self.max_total_tones is not None
            and self.max_total_tones < 2
        ):
            raise ScheduleError(
                "max_total_tones must be >= 2 (one row + one column)"
            )

    @property
    def unconstrained(self) -> bool:
        return (
            self.max_row_tones is None
            and self.max_col_tones is None
            and self.max_total_tones is None
            and self.min_row_spacing == 1
            and self.min_col_spacing == 1
        )

    # ------------------------------------------------------------------
    def violations(self, config: AodConfiguration) -> List[str]:
        """Human-readable list of limits ``config`` breaks (empty = legal)."""
        problems: List[str] = []
        rows = sorted(config.rows)
        cols = sorted(config.cols)
        if self.max_row_tones is not None and len(rows) > self.max_row_tones:
            problems.append(
                f"{len(rows)} row tones exceed limit {self.max_row_tones}"
            )
        if self.max_col_tones is not None and len(cols) > self.max_col_tones:
            problems.append(
                f"{len(cols)} column tones exceed limit {self.max_col_tones}"
            )
        if self.max_total_tones is not None:
            total = len(rows) + len(cols)
            if total > self.max_total_tones:
                problems.append(
                    f"{total} total tones exceed limit {self.max_total_tones}"
                )
        problems.extend(
            f"rows {a} and {b} closer than spacing {self.min_row_spacing}"
            for a, b in _spacing_violations(rows, self.min_row_spacing)
        )
        problems.extend(
            f"columns {a} and {b} closer than spacing {self.min_col_spacing}"
            for a, b in _spacing_violations(cols, self.min_col_spacing)
        )
        return problems

    def is_legal(self, config: AodConfiguration) -> bool:
        return not self.violations(config)

    def check_schedule(
        self, schedule: AddressingSchedule
    ) -> List[Tuple[int, str]]:
        """All violations across a schedule as ``(step, message)`` pairs."""
        found: List[Tuple[int, str]] = []
        for step, operation in enumerate(schedule):
            for message in self.violations(operation.configuration):
                found.append((step, message))
        return found

    def schedule_is_legal(self, schedule: AddressingSchedule) -> bool:
        return not self.check_schedule(schedule)


def _spacing_violations(
    sorted_indices: List[int], spacing: int
) -> List[Tuple[int, int]]:
    if spacing <= 1:
        return []
    return [
        (a, b)
        for a, b in zip(sorted_indices, sorted_indices[1:])
        if b - a < spacing
    ]
