"""Schedule cost models beyond raw depth.

Depth (the number of AOD reconfigurations) is the paper's objective, but
a released toolchain also wants wall-clock and control-complexity
estimates: reconfiguring the AOD costs settle time proportional-ish to
the tone changes, each pulse has a duration, and every active tone
occupies an RF synthesizer channel.  The model here is deliberately
simple and fully documented — callers calibrate the constants to their
apparatus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.atoms.schedule import AddressingSchedule
from repro.core.exceptions import ScheduleError


@dataclass(frozen=True)
class ScheduleCostModel:
    """Linear cost model for an addressing schedule.

    ``reconfiguration_time`` is charged per step; ``tone_switch_time``
    per row/column tone that differs from the previous configuration
    (the first configuration pays for all its tones); ``pulse_time`` per
    Rz shot.  Times are in arbitrary units (typically microseconds).
    """

    reconfiguration_time: float = 100.0
    tone_switch_time: float = 1.0
    pulse_time: float = 10.0

    def __post_init__(self) -> None:
        for name in (
            "reconfiguration_time",
            "tone_switch_time",
            "pulse_time",
        ):
            if getattr(self, name) < 0:
                raise ScheduleError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    def duration(self, schedule: AddressingSchedule) -> float:
        """Total schedule duration under the model."""
        total = 0.0
        previous_rows: FrozenSet[int] = frozenset()
        previous_cols: FrozenSet[int] = frozenset()
        for operation in schedule:
            config = operation.configuration
            changed_tones = len(
                config.rows ^ previous_rows
            ) + len(config.cols ^ previous_cols)
            total += self.reconfiguration_time
            total += self.tone_switch_time * changed_tones
            total += self.pulse_time
            previous_rows = config.rows
            previous_cols = config.cols
        return total

    def peak_tones(self, schedule: AddressingSchedule) -> int:
        """Maximum simultaneous RF tones — the synthesizer channel
        requirement, the paper's |X| + |Y| control-count argument."""
        return max(
            (op.configuration.num_tones for op in schedule), default=0
        )

    def summary(self, schedule: AddressingSchedule) -> Tuple[float, int, int]:
        """``(duration, depth, peak_tones)`` in one call."""
        return (
            self.duration(schedule),
            schedule.depth,
            self.peak_tones(schedule),
        )


def reorder_for_tone_reuse(schedule: AddressingSchedule) -> AddressingSchedule:
    """Greedy reordering minimizing tone switches between steps.

    The partition fixes the *set* of configurations but not their order;
    consecutive configurations sharing tones settle faster.  Greedy
    nearest-neighbour on the symmetric-difference metric; depth and
    correctness are unaffected (the same rectangles fire exactly once).
    """
    remaining = list(schedule.operations)
    if not remaining:
        return schedule
    ordered = [remaining.pop(0)]
    while remaining:
        last = ordered[-1].configuration
        best_index = min(
            range(len(remaining)),
            key=lambda k: len(
                remaining[k].configuration.rows ^ last.rows
            )
            + len(remaining[k].configuration.cols ^ last.cols),
        )
        ordered.append(remaining.pop(best_index))
    return AddressingSchedule(ordered, schedule.shape)
