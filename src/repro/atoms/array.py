"""2D qubit array geometry with optional vacancies.

Models the static trap array of the neutral-atom platform (Figure 1a):
an ``m x n`` grid of sites, each either occupied by an atom or vacant.
Vacant sites may be illuminated freely (there is nothing there to
acquire phase) — the "don't care" opportunity of Section VI.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import ScheduleError


class QubitArray:
    """A rectangular array of trap sites with an occupancy map."""

    def __init__(self, occupancy: BinaryMatrix) -> None:
        self._occupancy = occupancy

    @classmethod
    def full(cls, num_rows: int, num_cols: int) -> "QubitArray":
        """Array with an atom in every site."""
        return cls(BinaryMatrix.all_ones(num_rows, num_cols))

    @classmethod
    def with_vacancies(
        cls,
        num_rows: int,
        num_cols: int,
        vacancies: Iterable[Tuple[int, int]],
    ) -> "QubitArray":
        vacancy_matrix = BinaryMatrix.from_cells(
            vacancies, (num_rows, num_cols)
        )
        occupancy = vacancy_matrix.complement()
        return cls(occupancy)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._occupancy.shape

    @property
    def num_rows(self) -> int:
        return self._occupancy.num_rows

    @property
    def num_cols(self) -> int:
        return self._occupancy.num_cols

    @property
    def occupancy(self) -> BinaryMatrix:
        return self._occupancy

    @property
    def num_atoms(self) -> int:
        return self._occupancy.count_ones()

    def is_occupied(self, i: int, j: int) -> bool:
        return self._occupancy[i, j] == 1

    def atoms(self) -> Iterator[Tuple[int, int]]:
        return self._occupancy.ones()

    def vacancies(self) -> Iterator[Tuple[int, int]]:
        return self._occupancy.complement().ones()

    # ------------------------------------------------------------------
    def check_pattern(self, pattern: BinaryMatrix) -> None:
        """Require ``pattern`` to address only occupied sites."""
        if pattern.shape != self.shape:
            raise ScheduleError(
                f"pattern shape {pattern.shape} != array shape {self.shape}"
            )
        stray = pattern.elementwise_and(self._occupancy.complement())
        if not stray.is_zero():
            bad = next(stray.ones())
            raise ScheduleError(
                f"pattern addresses vacant site {bad}; "
                "vacant sites hold no qubit"
            )

    def __repr__(self) -> str:
        return (
            f"QubitArray({self.num_rows}x{self.num_cols}, "
            f"atoms={self.num_atoms})"
        )
