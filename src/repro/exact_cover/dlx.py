"""Knuth's Algorithm X with dancing links (DLX).

Section VI of the paper suggests replacing row packing's greedy, shuffle-
driven decomposition with an exact-cover search "such as Knuth's
Algorithm X"; :mod:`repro.solvers.row_packing_x` does exactly that, with
this module as the substrate.  The implementation is the classic toroidal
doubly-linked node structure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence

from repro.core.exceptions import SolverError


class DancingLinks:
    """Exact cover: select rows covering every universe column exactly once.

    Columns are integers ``0..universe_size-1``; rows are added with
    arbitrary hashable names.  ``solve`` yields solutions lazily as lists
    of row names.
    """

    _HEADER = 0

    def __init__(self, universe_size: int) -> None:
        if universe_size < 0:
            raise SolverError(f"universe size must be >= 0, got {universe_size}")
        self.universe_size = universe_size
        # Node arrays; index 0 is the root header.
        size = universe_size + 1
        self._left = list(range(-1, size - 1))
        self._right = list(range(1, size + 1))
        self._left[0] = size - 1
        self._right[size - 1] = 0
        self._up = list(range(size))
        self._down = list(range(size))
        self._column: List[int] = list(range(size))  # column header index
        self._row_name: List[Optional[Hashable]] = [None] * size
        self._col_size = [0] * size  # counts per column header
        self._row_names_seen: set = set()

    def _new_node(self) -> int:
        self._left.append(0)
        self._right.append(0)
        self._up.append(0)
        self._down.append(0)
        self._column.append(0)
        self._row_name.append(None)
        return len(self._left) - 1

    def add_row(self, name: Hashable, columns: Sequence[int]) -> None:
        """Add a candidate row covering ``columns``."""
        cols = sorted(set(columns))
        if not cols:
            raise SolverError(f"row {name!r} covers no columns")
        for col in cols:
            if not 0 <= col < self.universe_size:
                raise SolverError(
                    f"row {name!r}: column {col} outside universe "
                    f"[0, {self.universe_size})"
                )
        if name in self._row_names_seen:
            raise SolverError(f"duplicate row name {name!r}")
        self._row_names_seen.add(name)

        first: Optional[int] = None
        for col in cols:
            header = col + 1  # headers occupy indices 1..universe_size
            node = self._new_node()
            self._row_name[node] = name
            self._column[node] = header
            # Vertical splice above the header (end of the column list).
            self._down[node] = header
            self._up[node] = self._up[header]
            self._down[self._up[header]] = node
            self._up[header] = node
            self._col_size[header] += 1
            # Horizontal splice into the row's circular list.
            if first is None:
                first = node
                self._left[node] = node
                self._right[node] = node
            else:
                self._left[node] = self._left[first]
                self._right[node] = first
                self._right[self._left[first]] = node
                self._left[first] = node

    # ------------------------------------------------------------------
    def _cover(self, header: int) -> None:
        self._right[self._left[header]] = self._right[header]
        self._left[self._right[header]] = self._left[header]
        row = self._down[header]
        while row != header:
            node = self._right[row]
            while node != row:
                self._down[self._up[node]] = self._down[node]
                self._up[self._down[node]] = self._up[node]
                self._col_size[self._column[node]] -= 1
                node = self._right[node]
            row = self._down[row]

    def _uncover(self, header: int) -> None:
        row = self._up[header]
        while row != header:
            node = self._left[row]
            while node != row:
                self._col_size[self._column[node]] += 1
                self._down[self._up[node]] = node
                self._up[self._down[node]] = node
                node = self._left[node]
            row = self._up[row]
        self._right[self._left[header]] = header
        self._left[self._right[header]] = header

    def solutions(self) -> Iterator[List[Hashable]]:
        """Yield every exact cover (as a list of row names)."""
        stack: List[int] = []

        def search() -> Iterator[List[Hashable]]:
            root = self._HEADER
            if self._right[root] == root:
                yield [self._row_name[node] for node in stack]
                return
            # Choose the smallest column (Knuth's S heuristic).
            best = self._right[root]
            header = self._right[root]
            while header != root:
                if self._col_size[header] < self._col_size[best]:
                    best = header
                header = self._right[header]
            if self._col_size[best] == 0:
                return
            self._cover(best)
            row = self._down[best]
            while row != best:
                stack.append(row)
                node = self._right[row]
                while node != row:
                    self._cover(self._column[node])
                    node = self._right[node]
                yield from search()
                node = self._left[row]
                while node != row:
                    self._uncover(self._column[node])
                    node = self._left[node]
                stack.pop()
                row = self._down[row]
            self._uncover(best)

        yield from search()

    def solve(self) -> Optional[List[Hashable]]:
        """First exact cover, or ``None``."""
        for solution in self.solutions():
            return solution
        return None

    def count_solutions(self, limit: int = 1_000_000) -> int:
        count = 0
        for _ in self.solutions():
            count += 1
            if count >= limit:
                break
        return count


def exact_cover_masks(
    universe_mask: int, candidates: Dict[Hashable, int]
) -> Optional[List[Hashable]]:
    """Exact cover of a bit-mask universe by named candidate masks.

    Convenience wrapper used by the row-packing-X heuristic: each
    candidate must be a subset of ``universe_mask``; returns names whose
    masks partition ``universe_mask``, or ``None``.
    """
    if universe_mask == 0:
        return []
    columns: Dict[int, int] = {}
    for bit_position in range(universe_mask.bit_length()):
        if (universe_mask >> bit_position) & 1:
            columns[bit_position] = len(columns)
    dlx = DancingLinks(len(columns))
    usable = 0
    for name, mask in candidates.items():
        if mask == 0 or mask & ~universe_mask:
            continue
        dlx.add_row(
            name,
            [columns[p] for p in range(mask.bit_length()) if (mask >> p) & 1],
        )
        usable += 1
    if usable == 0:
        return None
    return dlx.solve()
