"""Exact cover via Knuth's Algorithm X / dancing links."""

from repro.exact_cover.dlx import DancingLinks, exact_cover_masks

__all__ = ["DancingLinks", "exact_cover_masks"]
