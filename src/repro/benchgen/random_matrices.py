"""Benchmark Set 1: random matrices (paper Section IV-A).

Sizes 10x10, 10x20, 10x30 with occupancies 10%..90%, and 100x100 with
occupancies 1%, 2%, 5%, 10%, 20% ("higher occupancies almost always
result in full rank, which is trivial").
"""

from __future__ import annotations

from typing import Optional

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError
from repro.utils.rng import RngLike, ensure_rng


def random_matrix(
    num_rows: int,
    num_cols: int,
    occupancy: float,
    *,
    seed: RngLike = None,
) -> BinaryMatrix:
    """Bernoulli(occupancy) i.i.d. entries."""
    if not 0.0 <= occupancy <= 1.0:
        raise InvalidMatrixError(f"occupancy must be in [0, 1], got {occupancy}")
    rng = ensure_rng(seed)
    masks = []
    for _ in range(num_rows):
        mask = 0
        for j in range(num_cols):
            if rng.random() < occupancy:
                mask |= 1 << j
        masks.append(mask)
    return BinaryMatrix(masks, num_cols)


def random_matrix_exact_ones(
    num_rows: int,
    num_cols: int,
    num_ones: int,
    *,
    seed: RngLike = None,
) -> BinaryMatrix:
    """Uniformly random matrix with exactly ``num_ones`` 1-entries."""
    total = num_rows * num_cols
    if not 0 <= num_ones <= total:
        raise InvalidMatrixError(
            f"num_ones must be in [0, {total}], got {num_ones}"
        )
    rng = ensure_rng(seed)
    chosen = rng.sample(range(total), num_ones)
    return BinaryMatrix.from_cells(
        [divmod(index, num_cols) for index in chosen],
        (num_rows, num_cols),
    )


def random_nonempty_matrix(
    num_rows: int,
    num_cols: int,
    occupancy: float,
    *,
    seed: RngLike = None,
    max_attempts: int = 1000,
) -> BinaryMatrix:
    """Like :func:`random_matrix` but rejects the all-zero draw."""
    rng = ensure_rng(seed)
    for _ in range(max_attempts):
        matrix = random_matrix(num_rows, num_cols, occupancy, seed=rng)
        if not matrix.is_zero():
            return matrix
    raise InvalidMatrixError(
        f"could not draw a non-empty {num_rows}x{num_cols} matrix at "
        f"occupancy {occupancy} in {max_attempts} attempts"
    )
