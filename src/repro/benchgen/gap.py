"""Benchmark Set 3: matrices with a gap between real and binary rank.

Construction (paper Section IV-A): sample a random row ``r`` and split
it ``k`` times into disjoint pairs ``r = r' + r''``.  Over the reals the
``2k`` rows have rank ``k + 1`` (any one pair recovers ``r``, each
further pair adds one dimension), but recombining pairs inside an EBMF
would need negative coefficients, so the binary rank exceeds ``k + 1`` —
the real-rank lower bound goes slack and the SMT phase has real work to
do.  The remaining ``m - 2k`` rows are random at 50% occupancy.
"""

from __future__ import annotations

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError
from repro.utils.bitops import popcount
from repro.utils.rng import RngLike, ensure_rng


def gap_matrix(
    num_rows: int,
    num_cols: int,
    num_pairs: int,
    *,
    seed: RngLike = None,
) -> BinaryMatrix:
    """Draw a Set-3 matrix with ``num_pairs`` split-row pairs."""
    if num_pairs < 1:
        raise InvalidMatrixError(f"num_pairs must be >= 1, got {num_pairs}")
    if 2 * num_pairs > num_rows:
        raise InvalidMatrixError(
            f"{num_pairs} pairs need {2 * num_pairs} rows, "
            f"matrix has {num_rows}"
        )
    rng = ensure_rng(seed)

    # The shared row r: 50% occupancy, at least 2 ones so it can split.
    base = 0
    while popcount(base) < 2:
        base = _random_row(num_cols, 0.5, rng)

    masks = []
    for _ in range(num_pairs):
        first = _proper_submask(base, rng)
        masks.append(first)
        masks.append(base & ~first)
    for _ in range(num_rows - 2 * num_pairs):
        masks.append(_random_row(num_cols, 0.5, rng))
    return BinaryMatrix(masks, num_cols)


def _random_row(num_cols: int, occupancy: float, rng) -> int:
    mask = 0
    for j in range(num_cols):
        if rng.random() < occupancy:
            mask |= 1 << j
    return mask


def _proper_submask(base: int, rng) -> int:
    """A non-empty proper submask of ``base`` (both halves non-empty)."""
    bits = [j for j in range(base.bit_length()) if (base >> j) & 1]
    while True:
        chosen = [j for j in bits if rng.random() < 0.5]
        if 0 < len(chosen) < len(bits):
            return sum(1 << j for j in chosen)
