"""Benchmark Set 2: matrices with known optimal solutions.

Construction (paper Section IV-A): pick ``k`` pairwise-disjoint row
vectors ``r_i`` and ``k`` linearly independent column vectors ``c_i``;
then ``M = sum_i c_i r_i`` is binary (disjoint rows prevent overlaps),
has an evident ``k``-rectangle partition, and has real rank exactly
``k`` — so by Eq. 3 the partition is optimal and ``r_B(M) = k``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.binary_matrix import BinaryMatrix
from repro.core.exceptions import InvalidMatrixError
from repro.core.partition import Partition
from repro.core.rectangle import Rectangle
from repro.linalg.exact_rank import real_rank
from repro.utils.rng import RngLike, ensure_rng


def known_optimal_matrix(
    num_rows: int,
    num_cols: int,
    rank: int,
    *,
    seed: RngLike = None,
    max_attempts: int = 2000,
) -> Tuple[BinaryMatrix, Partition]:
    """Draw ``(M, optimal_partition)`` with ``r_B(M) = rank``."""
    if not 1 <= rank <= min(num_rows, num_cols):
        raise InvalidMatrixError(
            f"rank must be in [1, {min(num_rows, num_cols)}], got {rank}"
        )
    rng = ensure_rng(seed)
    for _ in range(max_attempts):
        row_masks = _disjoint_row_vectors(num_cols, rank, rng)
        col_masks = _independent_column_vectors(num_rows, rank, rng)
        if col_masks is None:
            continue
        rects = [
            Rectangle(col_masks[i], row_masks[i]) for i in range(rank)
        ]
        partition = Partition(rects, (num_rows, num_cols))
        matrix = partition.covered_matrix()
        # Disjoint rows guarantee the rectangles never overlap, but the
        # construction can accidentally admit a *smaller* partition only
        # if rank_R < k; the column draw already ensures rank_R = k.
        partition.validate(matrix)
        if real_rank(matrix) != rank:
            continue
        return matrix, partition
    raise InvalidMatrixError(
        f"failed to build a known-optimal {num_rows}x{num_cols} matrix of "
        f"rank {rank} in {max_attempts} attempts"
    )


def _disjoint_row_vectors(num_cols: int, k: int, rng) -> List[int]:
    """``k`` non-empty pairwise-disjoint column masks."""
    while True:
        assignment = [rng.randrange(k + 1) for _ in range(num_cols)]
        masks = [0] * k
        for j, owner in enumerate(assignment):
            if owner < k:
                masks[owner] |= 1 << j
        if all(masks):
            return masks


def _independent_column_vectors(num_rows: int, k: int, rng):
    """``k`` linearly independent (over Q) 0/1 vectors of length num_rows."""
    for _ in range(200):
        vectors = []
        for _ in range(k):
            mask = 0
            while mask == 0:
                mask = rng.getrandbits(num_rows)
            vectors.append(mask)
        columns = [
            [(mask >> i) & 1 for i in range(num_rows)] for mask in vectors
        ]
        if real_rank(columns) == k:
            return vectors
    return None
