"""Benchmark generators for the paper's three evaluation families."""

from repro.benchgen.gap import gap_matrix
from repro.benchgen.known_optimal import known_optimal_matrix
from repro.benchgen.random_matrices import (
    random_matrix,
    random_matrix_exact_ones,
    random_nonempty_matrix,
)
from repro.benchgen.suite import (
    LARGE_OCCUPANCIES,
    SCALES,
    SMALL_OCCUPANCIES,
    BenchmarkCase,
    gap_suite,
    known_optimal_suite,
    random_suite,
    table1_suites,
)

__all__ = [
    "BenchmarkCase",
    "LARGE_OCCUPANCIES",
    "SCALES",
    "SMALL_OCCUPANCIES",
    "gap_matrix",
    "gap_suite",
    "known_optimal_matrix",
    "known_optimal_suite",
    "random_matrix",
    "random_matrix_exact_ones",
    "random_nonempty_matrix",
    "random_suite",
    "table1_suites",
]
