"""Named benchmark suites mirroring the rows of Table I.

Each suite is a list of :class:`BenchmarkCase`; the ``scale`` knob
switches between paper-scale counts (Section IV-A) and laptop-friendly
defaults (see DESIGN.md, "Scaling policy").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.benchgen.gap import gap_matrix
from repro.benchgen.known_optimal import known_optimal_matrix
from repro.benchgen.random_matrices import random_matrix
from repro.core.binary_matrix import BinaryMatrix
from repro.utils.rng import spawn_seeds

SCALES = ("quick", "paper")

SMALL_OCCUPANCIES = tuple(x / 10 for x in range(1, 10))
LARGE_OCCUPANCIES = (0.01, 0.02, 0.05, 0.10, 0.20)


@dataclass(frozen=True)
class BenchmarkCase:
    """One benchmark instance plus its provenance."""

    case_id: str
    family: str
    matrix: BinaryMatrix
    known_binary_rank: Optional[int] = None
    params: Dict[str, object] = field(default_factory=dict, hash=False)

    def __repr__(self) -> str:
        return f"BenchmarkCase({self.case_id})"


def _per_cell_count(scale: str, paper_count: int, quick_count: int) -> int:
    return paper_count if scale == "paper" else quick_count


def flatten_suites(
    suites: Dict[str, List[BenchmarkCase]]
) -> List[BenchmarkCase]:
    """All cases of all families in stable (family, then case) order.

    The flat list is what :func:`repro.service.batch.solve_batch`
    consumes — a ``BenchmarkCase`` already quacks like a batch item
    (``case_id`` + ``matrix``), so experiment runners can fan a whole
    table out through the service without conversion code.
    """
    return [case for cases in suites.values() for case in cases]


def random_suite(
    shape: Sequence[int],
    occupancies: Sequence[float],
    count_per_occupancy: int,
    *,
    seed: int = 2024,
) -> List[BenchmarkCase]:
    """Set 1 for one shape: ``count`` matrices per occupancy."""
    num_rows, num_cols = shape
    cases: List[BenchmarkCase] = []
    seeds = spawn_seeds(
        seed, len(occupancies) * count_per_occupancy,
        salt=f"rand{num_rows}x{num_cols}",
    )
    index = 0
    for occupancy in occupancies:
        for repeat in range(count_per_occupancy):
            matrix = random_matrix(
                num_rows, num_cols, occupancy, seed=seeds[index]
            )
            cases.append(
                BenchmarkCase(
                    case_id=(
                        f"rand-{num_rows}x{num_cols}-occ{occupancy:g}-{repeat}"
                    ),
                    family=f"{num_rows}x{num_cols}, rand",
                    matrix=matrix,
                    params={"occupancy": occupancy, "repeat": repeat},
                )
            )
            index += 1
    return cases


def known_optimal_suite(
    shape: Sequence[int],
    ranks: Sequence[int],
    count_per_rank: int,
    *,
    seed: int = 2024,
) -> List[BenchmarkCase]:
    """Set 2: matrices with known ``r_B`` (Eq. 3 certificate)."""
    num_rows, num_cols = shape
    cases: List[BenchmarkCase] = []
    seeds = spawn_seeds(
        seed, len(ranks) * count_per_rank, salt="known-optimal"
    )
    index = 0
    for rank in ranks:
        for repeat in range(count_per_rank):
            matrix, _ = known_optimal_matrix(
                num_rows, num_cols, rank, seed=seeds[index]
            )
            cases.append(
                BenchmarkCase(
                    case_id=f"opt-{num_rows}x{num_cols}-k{rank}-{repeat}",
                    family=f"{num_rows}x{num_cols}, opt",
                    matrix=matrix,
                    known_binary_rank=rank,
                    params={"rank": rank, "repeat": repeat},
                )
            )
            index += 1
    return cases


def gap_suite(
    shape: Sequence[int],
    num_pairs: int,
    count: int,
    *,
    seed: int = 2024,
) -> List[BenchmarkCase]:
    """Set 3 for one pair count."""
    num_rows, num_cols = shape
    seeds = spawn_seeds(seed, count, salt=f"gap{num_pairs}")
    return [
        BenchmarkCase(
            case_id=f"gap-{num_rows}x{num_cols}-p{num_pairs}-{repeat}",
            family=f"{num_rows}x{num_cols}, gap, {num_pairs}",
            matrix=gap_matrix(
                num_rows, num_cols, num_pairs, seed=seeds[repeat]
            ),
            params={"num_pairs": num_pairs, "repeat": repeat},
        )
        for repeat in range(count)
    ]


def _rand_suites(
    scale: str, seed: int, *, include_large: bool = True
) -> Dict[str, List[BenchmarkCase]]:
    """The Set-1 rows (random ensembles), keyed by paper row label."""
    count_small = _per_cell_count(scale, 10, 3)
    count_large = _per_cell_count(scale, 10, 2)
    large_occupancies = (
        LARGE_OCCUPANCIES if scale == "paper" else (0.01, 0.02, 0.05)
    )
    suites: Dict[str, List[BenchmarkCase]] = {}
    for shape in ((10, 10), (10, 20), (10, 30)):
        label = f"{shape[0]}x{shape[1]}, rand"
        suites[label] = random_suite(
            shape, SMALL_OCCUPANCIES, count_small, seed=seed
        )
    if include_large:
        suites["100x100, rand"] = random_suite(
            (100, 100), large_occupancies, count_large, seed=seed
        )
    return suites


def _opt_suites(
    scale: str, seed: int
) -> Dict[str, List[BenchmarkCase]]:
    """The Set-2 row (known-optimal certificates)."""
    count_opt = _per_cell_count(scale, 10, 4)
    return {
        "10x10, opt": known_optimal_suite(
            (10, 10), range(1, 11), count_opt, seed=seed
        )
    }


def _gap_suites(
    scale: str, seed: int
) -> Dict[str, List[BenchmarkCase]]:
    """The Set-3 rows (real-vs-binary rank gaps)."""
    count_gap = _per_cell_count(scale, 100, 12)
    return {
        f"10x10, gap, {pairs}": gap_suite(
            (10, 10), pairs, count_gap, seed=seed
        )
        for pairs in (2, 3, 4, 5)
    }


TABLE1_SET_BUILDERS = {
    "rand": _rand_suites,
    "opt": _opt_suites,
    "gap": _gap_suites,
}
"""The single source of truth for the Table-I instance sets.

Both :func:`table1_suites` (the experiment harness view) and the
``table1-*`` corpus families registered below (the scoreboard view)
enumerate from these builders, so the two can never drift apart.
"""


def table1_suites(
    *,
    scale: str = "quick",
    seed: int = 2024,
    include_large: bool = True,
) -> Dict[str, List[BenchmarkCase]]:
    """All Table I benchmark families, keyed by the paper's row labels.

    Paper scale: 10 matrices per occupancy for the small random sets,
    10 per rank for Set 2, 100 per pair count for Set 3.  Quick scale
    cuts the counts (3 / 4 / 12 respectively) and the large occupancy
    list — orderings in the reproduced table are unaffected.
    """
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    suites: Dict[str, List[BenchmarkCase]] = {}
    suites.update(_rand_suites(scale, seed, include_large=include_large))
    suites.update(_opt_suites(scale, seed))
    suites.update(_gap_suites(scale, seed))
    return suites


# ----------------------------------------------------------------------
# Corpus registration: the Table-I sets as standing corpus families.
# ----------------------------------------------------------------------
def _register_corpus_families() -> None:
    """Expose each Table-I set as a corpus family built from the same
    :data:`TABLE1_SET_BUILDERS` that :func:`table1_suites` uses.

    Profile mapping: ``full`` is the paper scale, uncapped (the corpus
    enumerates *exactly* ``flatten_suites(table1_suites(scale="paper"))``
    per set); ``quick``/``smoke`` use the quick scale without the
    100x100 slice, thinned to a per-family cap that still spans the
    occupancy / rank / pair-count ranges.
    """
    from repro.corpus.registry import (
        instance_from_case,
        register_family,
        thin,
        validate_profile,
    )

    caps = {"smoke": 3, "quick": 12, "full": None}

    def make_builder(set_name: str):
        def build(profile: str, seed: int):
            validate_profile(profile)
            scale = "paper" if profile == "full" else "quick"
            builder = TABLE1_SET_BUILDERS[set_name]
            if set_name == "rand":
                suites = builder(
                    scale, seed, include_large=(profile == "full")
                )
            else:
                suites = builder(scale, seed)
            cases = thin(flatten_suites(suites), caps[profile])
            return [
                instance_from_case(
                    case, family=f"table1-{set_name}", seed=seed
                )
                for case in cases
            ]

        return build

    descriptions = {
        "rand": "Table I Set 1: Bernoulli random ensembles "
        "(10x10 / 10x20 / 10x30, plus 100x100 at full profile)",
        "opt": "Table I Set 2: matrices with certified optimal "
        "partitions (known binary rank)",
        "gap": "Table I Set 3: real-vs-binary rank gap constructions",
    }
    for set_name, description in descriptions.items():
        register_family(
            f"table1-{set_name}",
            description,
            tags=("paper", "table1"),
        )(make_builder(set_name))


_register_corpus_families()
